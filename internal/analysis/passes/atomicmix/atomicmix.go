// Package atomicmix polices the boundary between sync/atomic and
// everything else. Three rules:
//
//  1. A struct field that is ever accessed through a sync/atomic
//     function (atomic.AddInt64(&s.n, 1), atomic.LoadUint64(&s.n), ...)
//     must never also be read or written plainly, unless the plain
//     access sits in a function that locks a mutex belonging to the
//     same struct (the guarding-lock escape: a field can be atomic on
//     the fast path and plainly swept under the struct's own lock).
//     Torn reads hide until the race detector happens to catch them;
//     this makes the discipline static.
//
//  2. A field of a typed atomic (atomic.Int64, atomic.Bool, ...) must
//     only be used as a method receiver or have its address taken.
//     Copying the value copies the guts out from under concurrent
//     updaters (and silently defeats the noCopy sentinel).
//
//  3. A plain int64/uint64 field used with 64-bit atomic functions must
//     be 64-bit-aligned on 32-bit platforms: its offset in the struct
//     layout under GOARCH=386 sizes must be a multiple of 8. This is
//     the classic pre-atomic.Int64 footgun — works on amd64, faults on
//     386/arm. (Typed atomics carry their own alignment; prefer them.)
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"joinpebble/internal/analysis"
)

// Analyzer is the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic must not be accessed plainly outside the guarding lock, typed atomics must not be copied, and 64-bit atomic fields must be alignment-safe",
	Run:  run,
}

// atomicFns maps sync/atomic function names to whether they demand
// 64-bit alignment of their operand.
var atomicFns = map[string]bool{
	"AddInt32": false, "AddUint32": false, "AddInt64": true, "AddUint64": true, "AddUintptr": false,
	"LoadInt32": false, "LoadUint32": false, "LoadInt64": true, "LoadUint64": true, "LoadUintptr": false, "LoadPointer": false,
	"StoreInt32": false, "StoreUint32": false, "StoreInt64": true, "StoreUint64": true, "StoreUintptr": false, "StorePointer": false,
	"SwapInt32": false, "SwapUint32": false, "SwapInt64": true, "SwapUint64": true, "SwapUintptr": false, "SwapPointer": false,
	"CompareAndSwapInt32": false, "CompareAndSwapUint32": false,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
	"CompareAndSwapUintptr": false, "CompareAndSwapPointer": false,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Pass 1: which fields are touched atomically, and which of those
	// touches demand 64-bit alignment. Also remember the argument
	// expressions themselves so pass 2 can tell an atomic access from a
	// plain one.
	atomicFields := map[*types.Var]bool{}          // field -> reached via atomic fn
	needs64 := map[*types.Var]bool{}               // field -> used with a 64-bit atomic fn
	atomicArgSites := map[*ast.SelectorExpr]bool{} // &s.n selectors inside atomic calls

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			wide, known := atomicFns[fn.Name()]
			if !known || len(call.Args) == 0 {
				return true
			}
			ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := fieldVar(info, sel)
			if f == nil {
				return true
			}
			atomicFields[f] = true
			if wide {
				needs64[f] = true
			}
			atomicArgSites[sel] = true
			return true
		})
	}

	// Which functions lock a mutex field of a given struct type: the
	// guarding-lock escape for plain accesses.
	guards := map[ast.Node]map[*types.Named]bool{}
	for _, file := range pass.Files {
		analysis.WithStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
				return true
			}
			switch fn.Name() {
			case "Lock", "RLock":
			default:
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			owner := lockOwner(info, sel)
			if owner == nil {
				return true
			}
			encl := analysis.EnclosingFunc(stack)
			if encl == nil {
				return true
			}
			if guards[encl] == nil {
				guards[encl] = map[*types.Named]bool{}
			}
			guards[encl][owner] = true
			return true
		})
	}

	// Pass 2: plain accesses to atomically-touched fields, typed-atomic
	// copies.
	for _, file := range pass.Files {
		analysis.WithStack(file, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := fieldVar(info, sel)
			if f == nil {
				return true
			}
			if isAtomicValueType(f.Type()) {
				if !addressedOrReceiver(stack, sel) {
					pass.Reportf(sel.Pos(), "atomic field %s.%s copied as a value; typed atomics must be used via methods or by address", ownerName(info, sel), f.Name())
				}
				return true
			}
			if !atomicFields[f] || atomicArgSites[sel] {
				return true
			}
			if parentSelectsMethod(stack, sel) {
				return true
			}
			encl := analysis.EnclosingFunc(stack)
			owner := fieldOwner(info, sel)
			if encl != nil && owner != nil && guards[encl][owner] {
				return true // plain sweep under the struct's own lock
			}
			pass.Reportf(sel.Pos(), "field %s.%s is accessed with sync/atomic elsewhere but read/written plainly here outside the guarding lock", ownerName(info, sel), f.Name())
			return true
		})
	}

	// Pass 3: 64-bit alignment of plain fields used with 64-bit atomic
	// functions, under 32-bit (GOARCH=386) struct layout.
	checkAlignment(pass, needs64)
	return nil
}

// fieldVar resolves sel to the struct field it selects, or nil.
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// fieldOwner returns the named struct type sel selects a field from.
func fieldOwner(info *types.Info, sel *ast.SelectorExpr) *types.Named {
	s, ok := info.Selections[sel]
	if !ok {
		return nil
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func ownerName(info *types.Info, sel *ast.SelectorExpr) string {
	if n := fieldOwner(info, sel); n != nil {
		return n.Obj().Name()
	}
	return "?"
}

// lockOwner resolves the struct type whose mutex field a Lock/RLock
// call operates on: s.mu.Lock() -> type of s.
func lockOwner(info *types.Info, lockSel *ast.SelectorExpr) *types.Named {
	x, ok := ast.Unparen(lockSel.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return fieldOwner(info, x)
}

// isAtomicValueType reports whether t is one of the typed atomics from
// sync/atomic (Int64, Uint32, Bool, Value, Pointer[T], ...).
func isAtomicValueType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// addressedOrReceiver reports whether sel (a typed-atomic field use) is
// in a safe position: the operand of &, or the receiver of a method
// call/selection (s.n.Add(1)).
func addressedOrReceiver(stack []ast.Node, sel *ast.SelectorExpr) bool {
	if len(stack) == 0 {
		return false
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.UnaryExpr:
		return p.Op == token.AND
	case *ast.SelectorExpr:
		return p.X == sel // s.n.Load: sel is the receiver of a deeper selection
	case *ast.ParenExpr:
		if len(stack) >= 2 {
			return addressedOrReceiver(stack[:len(stack)-1], sel)
		}
	}
	return false
}

// parentSelectsMethod reports whether sel is itself the X of a method
// selection (s.field.Method()) — not a plain value access.
func parentSelectsMethod(stack []ast.Node, sel *ast.SelectorExpr) bool {
	if len(stack) == 0 {
		return false
	}
	p, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	return ok && p.X == sel
}

// checkAlignment lays every struct that owns a needs64 field out with
// 32-bit sizes and reports fields not on an 8-byte boundary.
func checkAlignment(pass *analysis.Pass, needs64 map[*types.Var]bool) {
	if len(needs64) == 0 {
		return
	}
	sizes := types.SizesFor("gc", "386")
	// Find the defining struct of each flagged field by scanning the
	// package's named struct types.
	type target struct {
		field *types.Var
		owner *types.Named
		strct *types.Struct
	}
	var targets []target
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if needs64[st.Field(i)] {
				targets = append(targets, target{field: st.Field(i), owner: named, strct: st})
			}
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].field.Pos() < targets[j].field.Pos() })
	for _, tg := range targets {
		fields := make([]*types.Var, tg.strct.NumFields())
		idx := -1
		for i := 0; i < tg.strct.NumFields(); i++ {
			fields[i] = tg.strct.Field(i)
			if fields[i] == tg.field {
				idx = i
			}
		}
		offsets := sizes.Offsetsof(fields)
		if idx >= 0 && offsets[idx]%8 != 0 {
			pass.Reportf(tg.field.Pos(), "field %s.%s is used with 64-bit sync/atomic functions but sits at offset %d under 32-bit layout; move it to the front of the struct or use atomic.Int64/Uint64", tg.owner.Obj().Name(), tg.field.Name(), offsets[idx])
		}
	}
}
