package atomicmix_test

import (
	"testing"

	"joinpebble/internal/analysis/analysistest"
	"joinpebble/internal/analysis/passes/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, atomicmix.Analyzer, "atomicmixa")
}
