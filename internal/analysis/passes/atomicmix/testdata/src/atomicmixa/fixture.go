// Package atomicmixa exercises the atomicmix analyzer: plain access to
// atomically-touched fields (flagged), the guarding-lock escape
// (clean), typed-atomic copies (flagged) vs method/address use (clean),
// and 64-bit alignment of pre-typed-atomic counter fields under 32-bit
// layout.
package atomicmixa

import (
	"sync"
	"sync/atomic"
)

// Mixed access: hits is incremented atomically on the fast path but
// also read plainly with no lock anywhere in sight.
type mixed struct {
	pad  int64
	hits int64
}

func (m *mixed) bump() {
	atomic.AddInt64(&m.hits, 1)
}

func (m *mixed) peek() int64 {
	return m.hits // want `field mixed\.hits is accessed with sync/atomic elsewhere but read/written plainly here outside the guarding lock`
}

func (m *mixed) reset() {
	m.hits = 0 // want `field mixed\.hits is accessed with sync/atomic elsewhere but read/written plainly here outside the guarding lock`
}

// Guarding-lock escape: the counter is atomic on the fast path and
// plainly swept in a function that holds the struct's own mutex.
type guarded struct {
	n  int64
	mu sync.Mutex
}

func (g *guarded) bump() {
	atomic.AddInt64(&g.n, 1)
}

func (g *guarded) sweep() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.n
	g.n = 0
	return n
}

// Typed atomics: method calls and address-taking are fine, copying the
// value is not.
type typed struct {
	waiting atomic.Int64
	flag    atomic.Bool
}

func (t *typed) enter() {
	t.waiting.Add(1)
	t.flag.Store(true)
}

func (t *typed) addr() *atomic.Int64 {
	return &t.waiting
}

func (t *typed) leak() atomic.Int64 {
	return t.waiting // want `atomic field typed\.waiting copied as a value`
}

func (t *typed) compare(x int64) bool {
	v := t.waiting // want `atomic field typed\.waiting copied as a value`
	return v.Load() == x
}

// Alignment: under GOARCH=386 layout, bad.count lands at offset 4 —
// a 64-bit atomic on it faults on 32-bit platforms. good.count is at
// offset 0 and passes.
type misaligned struct {
	ready bool
	count int64 // want `field misaligned\.count is used with 64-bit sync/atomic functions but sits at offset 4 under 32-bit layout`
}

func (b *misaligned) bump() {
	atomic.AddInt64(&b.count, 1)
}

type aligned struct {
	count int64
	ready bool
}

func (g *aligned) bump() {
	atomic.AddInt64(&g.count, 1)
}

// 32-bit atomics carry no alignment demand: offset 4 is fine.
type narrow struct {
	ready bool
	count uint32
}

func (n *narrow) bump() {
	atomic.AddUint32(&n.count, 1)
}
