// Package forbidden bans three classes of ambient global state:
//
//   - http.DefaultServeMux (directly, or implicitly via http.Handle and
//     http.HandleFunc) — handlers registered on a process-wide mux leak
//     between tests and between subsystems; construct a mux.
//   - the top-level math/rand functions (rand.Intn, rand.Shuffle, ...),
//     which draw from the process-wide source — the repo's workloads
//     are reproducible only because every generator threads a seeded
//     *rand.Rand (rand.New/NewSource/NewZipf stay legal).
//   - bare time.Now/Since/Until outside internal/obs and
//     engine/cmdutil — wall-time reads go through obs.Now/Since/Until
//     so tests can inject the clock (see internal/obs/clock.go).
package forbidden

import (
	"go/ast"
	"go/types"
	"strings"

	"joinpebble/internal/analysis"
)

// Analyzer is the forbidden pass.
var Analyzer = &analysis.Analyzer{
	Name: "forbidden",
	Doc:  "ban DefaultServeMux, global math/rand, and bare time.Now outside the clock seam",
	Run:  run,
}

// clockExempt reports whether pkg may read time directly: the obs tree
// (it implements the seam) and engine/cmdutil (it parses -timeout style
// flags at process edge, before obs is configured).
func clockExempt(path string) bool {
	return path == "joinpebble/internal/obs" ||
		strings.HasPrefix(path, "joinpebble/internal/obs/") ||
		path == "joinpebble/internal/engine/cmdutil"
}

// randAllowed are the math/rand package-level functions that construct
// seeded generators rather than using the global source.
var randAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	exemptClock := clockExempt(pass.Pkg.Path())
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			// Any mention of the DefaultServeMux variable (always a
			// package-qualified selector from outside net/http).
			if sel, ok := n.(*ast.SelectorExpr); ok {
				obj := analysis.UsedObject(info, sel)
				if obj != nil && obj.Name() == "DefaultServeMux" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
					pass.Reportf(sel.Pos(), "http.DefaultServeMux is process-global state; construct a mux with http.NewServeMux")
				}
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			pkg, name := fn.Pkg().Path(), fn.Name()
			sig, _ := fn.Type().(*types.Signature)
			isTopLevel := sig != nil && sig.Recv() == nil
			switch {
			case pkg == "net/http" && isTopLevel && (name == "Handle" || name == "HandleFunc"):
				pass.Reportf(call.Pos(), "http.%s registers on the global DefaultServeMux; construct a mux with http.NewServeMux", name)
			case (pkg == "math/rand" || pkg == "math/rand/v2") && isTopLevel && !randAllowed[name]:
				pass.Reportf(call.Pos(), "math/rand global %s draws from the process-wide source; thread a seeded *rand.Rand (rand.New) instead", name)
			case pkg == "time" && isTopLevel && !exemptClock && (name == "Now" || name == "Since" || name == "Until"):
				pass.Reportf(call.Pos(), "bare time.%s; use obs.%s so tests can inject the clock", name, name)
			}
			return true
		})
	}
	return nil
}
