package forbidden_test

import (
	"testing"

	"joinpebble/internal/analysis/analysistest"
	"joinpebble/internal/analysis/passes/forbidden"
)

func TestForbidden(t *testing.T) {
	analysistest.Run(t, forbidden.Analyzer,
		"forbiddenfix",
		"joinpebble/internal/obs/clockfix", // exempt path: bare time.Now allowed
	)
}
