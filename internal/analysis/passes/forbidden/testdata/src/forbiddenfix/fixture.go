// Package forbiddenfix exercises all three forbidden-global rules.
package forbiddenfix

import (
	"math/rand"
	"net/http"
	"time"

	"joinpebble/internal/obs"
)

func mux() http.Handler {
	http.HandleFunc("/x", func(http.ResponseWriter, *http.Request) {}) // want `http\.HandleFunc registers on the global DefaultServeMux`
	http.Handle("/y", http.NotFoundHandler())                          // want `http\.Handle registers on the global DefaultServeMux`
	return http.DefaultServeMux                                        // want `http\.DefaultServeMux is process-global state`
}

func ownMux() http.Handler {
	m := http.NewServeMux()
	m.HandleFunc("/x", func(http.ResponseWriter, *http.Request) {})
	return m
}

func globalRand(n int) int {
	rand.Shuffle(n, func(i, j int) {}) // want `math/rand global Shuffle draws from the process-wide source`
	return rand.Intn(n)                // want `math/rand global Intn draws from the process-wide source`
}

func seededRand(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

func elapsed() time.Duration {
	start := time.Now()      // want `bare time\.Now; use obs\.Now`
	return time.Since(start) // want `bare time\.Since; use obs\.Since`
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `bare time\.Until; use obs\.Until`
}

func injected() time.Duration {
	start := obs.Now()
	return obs.Since(start)
}
