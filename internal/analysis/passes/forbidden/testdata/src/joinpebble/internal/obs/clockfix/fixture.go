// Package clockfix sits under the internal/obs tree, where reading the
// real clock is the whole point; forbidden must stay silent.
package clockfix

import "time"

func realNow() time.Time { return time.Now() }

func realSince(t time.Time) time.Duration { return time.Since(t) }
