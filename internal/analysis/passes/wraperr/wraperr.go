// Package wraperr enforces the sentinel-error discipline the
// degradation ladder depends on: the engine decides whether a rung
// failure is a budget problem (fall to the next rung) or a structural
// one (give up) by errors.Is against package sentinels like
// solver.ErrBudgetExceeded, so a sentinel embedded with %v instead of
// %w, or compared with ==, silently breaks the ladder.
//
// Two rules, applied to every package-level `var ErrXxx` of error type
// (the repo's sentinel naming convention):
//
//   - fmt.Errorf arguments that are sentinels must be formatted with
//     %w, not %v/%s/%d, so the sentinel stays in the unwrap chain.
//   - sentinels must never be compared with == or != (including switch
//     cases); use errors.Is, which sees through wrapping.
package wraperr

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"joinpebble/internal/analysis"
)

// Analyzer is the wraperr pass.
var Analyzer = &analysis.Analyzer{
	Name: "wraperr",
	Doc:  "package sentinels must be wrapped with %w and compared with errors.Is",
	Run:  run,
}

var sentinelNameRE = regexp.MustCompile(`^Err[A-Z]`)

// isSentinel reports whether expr uses a package-level error variable
// following the ErrXxx naming convention, in any package.
func isSentinel(info *types.Info, expr ast.Expr) (types.Object, bool) {
	obj := analysis.UsedObject(info, expr)
	v, ok := obj.(*types.Var)
	if !ok || !analysis.IsPackageLevel(v) || !sentinelNameRE.MatchString(v.Name()) {
		return nil, false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !types.Implements(v.Type(), errType) {
		return nil, false
	}
	return v, true
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkComparison(pass, n)
				}
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkComparison(pass *analysis.Pass, cmp *ast.BinaryExpr) {
	for _, side := range []ast.Expr{cmp.X, cmp.Y} {
		if obj, ok := isSentinel(pass.TypesInfo, side); ok {
			// `err == nil` style checks never reach here (nil is not a
			// sentinel), so any hit is a real identity comparison.
			pass.Reportf(cmp.Pos(), "sentinel %s compared with %s; use errors.Is, which sees through %%w wrapping", obj.Name(), cmp.Op)
		}
	}
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if obj, ok := isSentinel(pass.TypesInfo, e); ok {
				pass.Reportf(e.Pos(), "sentinel %s in a switch case compares with ==; use errors.Is in an if/else chain", obj.Name())
			}
		}
	}
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	fn := analysis.CalleeFunc(info, call)
	if !analysis.FuncIs(fn, "fmt", "", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := analysis.ConstString(info, call.Args[0])
	if !ok {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return // explicit argument indexes; too clever to check
	}
	for i, arg := range call.Args[1:] {
		obj, sentinel := isSentinel(info, arg)
		if !sentinel || i >= len(verbs) {
			continue
		}
		if verbs[i] != 'w' {
			pass.Reportf(arg.Pos(), "sentinel %s formatted with %%%c; use %%w so errors.Is and the degradation ladder still match it", obj.Name(), verbs[i])
		}
	}
}

// formatVerbs returns the verb letter consumed by each successive
// argument of a Printf-style format. It reports ok=false for formats
// using explicit argument indexes or '*' width/precision, where the
// positional mapping is not one-to-one.
func formatVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		for i < len(format) && (format[i] >= '0' && format[i] <= '9' || format[i] == '.') {
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
			i++
		case '[', '*':
			return nil, false
		default:
			verbs = append(verbs, format[i])
			i++
		}
	}
	return verbs, true
}
