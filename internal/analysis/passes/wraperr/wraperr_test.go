package wraperr_test

import (
	"testing"

	"joinpebble/internal/analysis/analysistest"
	"joinpebble/internal/analysis/passes/wraperr"
)

func TestWraperr(t *testing.T) {
	analysistest.Run(t, wraperr.Analyzer, "wraperrfix")
}
