// Package wraperrfix exercises both wraperr rules against a local
// sentinel and a real one imported from the solver.
package wraperrfix

import (
	"errors"
	"fmt"

	"joinpebble/internal/solver"
)

// ErrLocal is a sentinel by the repo's naming convention.
var ErrLocal = errors.New("wraperrfix: local failure")

// notASentinel doesn't match ErrXxx; wraperr ignores it.
var notASentinel = errors.New("wraperrfix: anonymous")

func compare(err error) string {
	if err == ErrLocal { // want `sentinel ErrLocal compared with ==`
		return "local"
	}
	if err != solver.ErrBudgetExceeded { // want `sentinel ErrBudgetExceeded compared with !=`
		return "other"
	}
	if err == notASentinel {
		return "anon"
	}
	return "budget"
}

func compareSwitch(err error) string {
	switch err {
	case ErrLocal: // want `sentinel ErrLocal in a switch case compares with ==`
		return "local"
	case nil:
		return "none"
	}
	return "other"
}

func wrapWrong(n int) error {
	return fmt.Errorf("component %d: %v", n, ErrLocal) // want `sentinel ErrLocal formatted with %v; use %w`
}

func wrapString() error {
	return fmt.Errorf("cause: %s", solver.ErrBudgetExceeded) // want `sentinel ErrBudgetExceeded formatted with %s; use %w`
}

func wrapRight(n int) error {
	return fmt.Errorf("component %d: %w", n, ErrLocal)
}

func checkRight(err error) bool {
	return errors.Is(err, ErrLocal) || errors.Is(err, solver.ErrBudgetExceeded)
}
