// Package graph mirrors the real graph package's import path so the
// ctxloop scope filter applies to these fixtures: the claw-scan kernel
// put internal/graph in scope, and its vertex loop must carry the same
// checkpoint discipline as the tsp/solver search loops.
package graph

import (
	"context"

	"joinpebble/internal/faultinject"
)

const clawMask = 0x3FF

// scanUnchecked fires the claw checkpoint but never consults ctx.
func scanUnchecked(ctx context.Context, n int) error {
	for v := 0; v < n; v++ { // want `loop in function scanUnchecked calls faultinject\.Fire \(search expansion\) but never checks ctx\.Err`
		if v&clawMask == 0 {
			if err := faultinject.Fire("graph/fixture-scan"); err != nil {
				return err
			}
		}
	}
	_ = ctx
	return nil
}

// scanBounded is the kernel's canonical per-center checkpoint shape.
func scanBounded(ctx context.Context, n int) error {
	for v := 0; v < n; v++ {
		if v&clawMask == 0 {
			if err := faultinject.Fire("graph/fixture-scan"); err != nil {
				return err
			}
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}
