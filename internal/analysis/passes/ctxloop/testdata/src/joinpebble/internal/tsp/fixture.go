// Package tsp mirrors the real search package's import path so the
// ctxloop scope filter applies to these fixtures.
package tsp

import (
	"context"

	"joinpebble/internal/faultinject"
)

const mask = 0x3FF

// uncheckedLoop expands without ever looking at ctx.
func uncheckedLoop(ctx context.Context, n int) error {
	for s := 0; s < n; s++ { // want `loop in function uncheckedLoop calls faultinject\.Fire \(search expansion\) but never checks ctx\.Err`
		if s&mask == 0 {
			if err := faultinject.Fire("tsp/fixture-expand"); err != nil {
				return err
			}
		}
	}
	_ = ctx
	return nil
}

// sparseLoop checks, but only every 2^17 expansions.
func sparseLoop(ctx context.Context, n int) error {
	for s := 0; s < n; s++ {
		if s&0x1FFFF == 0 {
			if err := faultinject.Fire("tsp/fixture-expand"); err != nil {
				return err
			}
			if err := ctx.Err(); err != nil { // want `checks cancellation only every 131072 expansions`
				return err
			}
		}
	}
	return nil
}

// boundedLoop is the repo's canonical checkpoint shape.
func boundedLoop(ctx context.Context, n int) error {
	for s := 0; s < n; s++ {
		if s&mask == 0 {
			if err := faultinject.Fire("tsp/fixture-expand"); err != nil {
				return err
			}
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// eagerLoop checks every iteration, unguarded.
func eagerLoop(ctx context.Context, n int) error {
	for s := 0; s < n; s++ {
		if err := faultinject.Fire("tsp/fixture-expand"); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
	return nil
}

// recursiveUnchecked mirrors a branch-and-bound dfs that forgot its
// checkpoint: the expansion loop only recurses, so the function body
// itself must carry the check.
func recursiveUnchecked(ctx context.Context, depth int) {
	var nodes int64
	var dfs func(d int)
	dfs = func(d int) { // want `self-recursive closure dfs calls faultinject\.Fire \(search expansion\) but never checks ctx\.Err`
		nodes++
		if nodes&mask == 0 {
			_ = faultinject.Fire("tsp/fixture-expand")
		}
		if d == 0 {
			return
		}
		dfs(d - 1)
	}
	dfs(depth)
	_ = ctx
}

// recursiveChecked is the compliant dfs shape.
func recursiveChecked(ctx context.Context, depth int) {
	var nodes int64
	var dfs func(d int)
	dfs = func(d int) {
		nodes++
		if nodes&mask == 0 {
			_ = faultinject.Fire("tsp/fixture-expand")
			if ctx.Err() != nil {
				return
			}
		}
		if d == 0 {
			return
		}
		dfs(d - 1)
	}
	dfs(depth)
}

// plainLoop never fires an expansion checkpoint: not a search loop.
func plainLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
