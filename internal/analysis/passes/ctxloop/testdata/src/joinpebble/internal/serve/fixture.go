// Package serve mirrors the real service package's import path so the
// ctxloop scope filter (extended to internal/serve for the retry and
// arrival loops) applies to these fixtures.
package serve

import (
	"context"

	"joinpebble/internal/faultinject"
)

// retryUnchecked is the shape the extension exists to catch: a retry
// loop firing a serve checkpoint with no way out on cancellation.
func retryUnchecked(ctx context.Context, attempts int) error {
	for try := 0; try < attempts; try++ { // want `loop in function retryUnchecked calls faultinject\.Fire \(search expansion\) but never checks ctx\.Err`
		if err := faultinject.Fire("serve/fixture-retry"); err != nil {
			return err
		}
	}
	_ = ctx
	return nil
}

// retryChecked is the real client.go shape: ctx.Err consulted every
// attempt.
func retryChecked(ctx context.Context, attempts int) error {
	for try := 0; try < attempts; try++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := faultinject.Fire("serve/fixture-retry"); err != nil {
			return err
		}
	}
	return nil
}

// fireContextIsNotACheck: FireContext selects on ctx only while a site
// is armed with a delay, so it counts as an expansion, never as a
// cancellation check.
func fireContextIsNotACheck(ctx context.Context, n int) error {
	for i := 0; i < n; i++ { // want `loop in function fireContextIsNotACheck calls faultinject\.Fire \(search expansion\) but never checks ctx\.Err`
		if err := faultinject.FireContext(ctx, "serve/fixture-admit"); err != nil {
			return err
		}
	}
	return nil
}

// fireContextWithCheck pairs the checkpoint with a real ctx check.
func fireContextWithCheck(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := faultinject.FireContext(ctx, "serve/fixture-admit"); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
	return nil
}
