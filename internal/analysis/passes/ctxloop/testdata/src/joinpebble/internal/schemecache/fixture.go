// Package schemecache mirrors the real cache package's import path so
// the ctxloop scope filter (extended to internal/schemecache for the
// CLOCK eviction sweep) applies to these fixtures.
package schemecache

import (
	"context"

	"joinpebble/internal/faultinject"
)

// sweepUnchecked models a CLOCK hand scan that fires the eviction
// checkpoint but can spin past a canceled context.
func sweepUnchecked(ctx context.Context, slots []bool) int {
	hand := 0
	for i := 0; i < 2*len(slots); i++ { // want `loop in function sweepUnchecked calls faultinject\.Fire \(search expansion\) but never checks ctx\.Err`
		_ = faultinject.Fire("schemecache/fixture-evict")
		if !slots[hand] {
			return hand
		}
		slots[hand] = false
		hand = (hand + 1) % len(slots)
	}
	_ = ctx
	return -1
}

// sweepChecked consults ctx.Err each revolution.
func sweepChecked(ctx context.Context, slots []bool) int {
	hand := 0
	for i := 0; i < 2*len(slots); i++ {
		if ctx.Err() != nil {
			return -1
		}
		_ = faultinject.Fire("schemecache/fixture-evict")
		if !slots[hand] {
			return hand
		}
		slots[hand] = false
		hand = (hand + 1) % len(slots)
	}
	return -1
}

// fingerprintLoop has no faultinject checkpoint: not an expansion loop,
// no check demanded even in a scoped package.
func fingerprintLoop(data []byte) uint64 {
	var h uint64 = 1469598103934665603
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}
