// Package ctxloopout is outside the search packages; ctxloop must
// ignore even a blatantly unchecked expansion loop here.
package ctxloopout

import "joinpebble/internal/faultinject"

func fireLoop(n int) {
	for i := 0; i < n; i++ {
		_ = faultinject.Fire("out/fixture")
	}
}
