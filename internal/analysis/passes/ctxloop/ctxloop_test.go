package ctxloop_test

import (
	"testing"

	"joinpebble/internal/analysis/analysistest"
	"joinpebble/internal/analysis/passes/ctxloop"
)

func TestCtxloop(t *testing.T) {
	analysistest.Run(t, ctxloop.Analyzer,
		"joinpebble/internal/tsp",         // mirrored path: in scope
		"joinpebble/internal/graph",       // claw-scan kernel scope
		"joinpebble/internal/serve",       // retry/arrival loops (PR 10 extension)
		"joinpebble/internal/schemecache", // CLOCK eviction sweep (PR 10 extension)
		"ctxloopout",                      // not a search package: ignored
	)
}
