// Package ctxloop enforces the cancellation cadence of search loops in
// internal/tsp, internal/solver, and internal/graph: any loop (or
// self-recursive function) that expands search state — identified by
// calling faultinject.Fire, which the repo places exactly at expansion
// checkpoints — must also consult ctx.Err or ctx.Done, and if the check
// sits behind a stride guard (`x&mask == 0` or `x%n == 0`), the stride
// must be bounded (<= MaxStride), so a canceled context unwinds within
// a bounded number of expansions (DESIGN.md "Cancellation").
package ctxloop

import (
	"go/ast"
	"go/token"
	"go/types"

	"joinpebble/internal/analysis"
)

// MaxStride is the largest tolerated gap between cancellation checks,
// in loop iterations / recursive expansions. The repo's checkpointMask
// (0x3FF, stride 1024) sits comfortably under it; the cap exists so a
// future "tune the mask" change cannot silently make cancellation
// latency unbounded in practice.
const MaxStride = 4096

// scopedPkgs are the packages whose loops do search expansion — the TSP
// and solver search trees, the graph package's claw-scan kernel, and
// (since the service landed) the serve package's retry/arrival loops
// and the scheme cache's CLOCK eviction sweep: all carry faultinject
// checkpoints and must stay cancellable under the same discipline.
var scopedPkgs = map[string]bool{
	"joinpebble/internal/tsp":         true,
	"joinpebble/internal/solver":      true,
	"joinpebble/internal/graph":       true,
	"joinpebble/internal/serve":       true,
	"joinpebble/internal/schemecache": true,
}

// Analyzer is the ctxloop pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxloop",
	Doc:  "search-expansion loops must check ctx.Err/Done within a bounded stride",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !scopedPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		// Map closures to the variable they are assigned to, so
		// self-recursion through `var dfs func(...); dfs = func...`
		// is visible.
		litVar := closureVars(pass.TypesInfo, file)
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var self types.Object
			var pos token.Pos
			var what string
			switch n := n.(type) {
			case *ast.FuncDecl:
				body, self, pos, what = n.Body, pass.TypesInfo.Defs[n.Name], n.Pos(), "function "+n.Name.Name
			case *ast.FuncLit:
				self = litVar[n]
				name := "closure"
				if self != nil {
					name = "closure " + self.Name()
				}
				body, pos, what = n.Body, n.Pos(), name
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkFunc(pass, body, self, pos, what)
			return true
		})
	}
	return nil
}

// checkFunc applies both rules to one function body: every loop that
// fires an expansion checkpoint needs an in-loop cancellation check,
// and a self-recursive function that fires one needs a check in its
// own body (its loops may just recurse, as in branch and bound).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, self types.Object, pos token.Pos, what string) {
	info := pass.TypesInfo

	if self != nil {
		rec := scanRegion(info, body, self)
		if rec.recurses && len(rec.fires) > 0 {
			reportRegion(pass, rec, pos, "self-recursive "+what)
		}
	}

	analysis.WithStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed on its own
		}
		var loopBody *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			loopBody = n.Body
		case *ast.RangeStmt:
			loopBody = n.Body
		default:
			return true
		}
		res := scanRegion(info, loopBody, nil)
		if len(res.fires) > 0 {
			reportRegion(pass, res, n.Pos(), "loop in "+what)
		}
		return true
	})
}

func reportRegion(pass *analysis.Pass, res regionScan, pos token.Pos, what string) {
	if len(res.checks) == 0 {
		pass.Reportf(pos, "%s calls faultinject.Fire (search expansion) but never checks ctx.Err or ctx.Done", what)
		return
	}
	best := res.checks[0]
	for _, c := range res.checks[1:] {
		if c.stride < best.stride {
			best = c
		}
	}
	if best.stride > MaxStride {
		pass.Reportf(best.pos, "%s checks cancellation only every %d expansions; bound the stride to at most %d", what, best.stride, MaxStride)
	}
}

type ctxCheck struct {
	pos    token.Pos
	stride int64
}

type regionScan struct {
	fires    []token.Pos
	checks   []ctxCheck
	recurses bool
}

// scanRegion walks a loop or function body (skipping nested function
// literals) collecting faultinject.Fire calls, ctx.Err/Done calls with
// their guard strides, and — when self is non-nil — calls back to self.
func scanRegion(info *types.Info, body *ast.BlockStmt, self types.Object) regionScan {
	var res regionScan
	analysis.WithStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if self != nil {
			if obj := analysis.UsedObject(info, call.Fun); obj == self {
				res.recurses = true
			}
		}
		fn := analysis.CalleeFunc(info, call)
		if fn == nil {
			return true
		}
		// FireContext is a fire, not a check: it selects on ctx only
		// when a site is armed with a delay, so a disarmed run would
		// never observe cancellation through it.
		if analysis.FuncIs(fn, "joinpebble/internal/faultinject", "", "Fire") ||
			analysis.FuncIs(fn, "joinpebble/internal/faultinject", "", "FireContext") {
			res.fires = append(res.fires, call.Pos())
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "context" && (fn.Name() == "Err" || fn.Name() == "Done") {
			res.checks = append(res.checks, ctxCheck{pos: call.Pos(), stride: guardStride(info, stack, body)})
		}
		return true
	})
	return res
}

// guardStride multiplies the strides of every enclosing mask/modulo
// guard between the check and the region root: `x&K == 0` passes one
// iteration in K+1, `x%N == 0` one in N. An unguarded check (or one
// behind guards this can't decode) counts as stride 1 — the analyzer
// only flags strides it can prove too large.
func guardStride(info *types.Info, stack []ast.Node, root ast.Node) int64 {
	stride := int64(1)
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == root {
			break
		}
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if s := condStride(info, ifs.Cond); s > 1 {
			stride *= s
		}
	}
	return stride
}

// condStride decodes `expr & K == 0` (stride K+1, for power-of-two-minus-
// one masks) and `expr % N == 0` (stride N); anything else is 1.
func condStride(info *types.Info, cond ast.Expr) int64 {
	eq, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || eq.Op != token.EQL {
		return 1
	}
	inner, zero := eq.X, eq.Y
	if v, ok := analysis.ConstInt(info, inner); ok && v == 0 {
		inner, zero = eq.Y, eq.X
	}
	if v, ok := analysis.ConstInt(info, zero); !ok || v != 0 {
		return 1
	}
	bin, ok := ast.Unparen(inner).(*ast.BinaryExpr)
	if !ok {
		return 1
	}
	k, ok := analysis.ConstInt(info, bin.Y)
	if !ok {
		if k, ok = analysis.ConstInt(info, bin.X); !ok {
			return 1
		}
	}
	switch bin.Op {
	case token.AND:
		return k + 1
	case token.REM:
		return k
	}
	return 1
}

// closureVars maps each function literal in file to the variable it is
// assigned to (via :=, =, or var decl), when that target is a plain
// identifier — enough to see `var dfs func(...); dfs = func(...)`.
func closureVars(info *types.Info, file *ast.File) map[*ast.FuncLit]types.Object {
	m := map[*ast.FuncLit]types.Object{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		lit, ok := rhs.(*ast.FuncLit)
		if !ok {
			return
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			m[lit] = obj
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return m
}
