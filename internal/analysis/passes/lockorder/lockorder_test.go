package lockorder_test

import (
	"testing"

	"joinpebble/internal/analysis/analysistest"
	"joinpebble/internal/analysis/passes/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "lockordera", "lockorderb")
}
