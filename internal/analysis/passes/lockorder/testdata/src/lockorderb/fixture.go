// Package lockorderb closes the cross-package lock cycle opened by
// lockordera: it acquires Right before Left, so the whole-program graph
// has Left -> Right (from lockordera) and Right -> Left (from here).
// The cycle diagnostic is reported once, at the earliest edge, which
// lives in lockordera.
package lockorderb

import "lockordera"

func RightThenLeft() {
	lockordera.R.Mu.Lock()
	lockordera.L.Mu.Lock()
	lockordera.L.Mu.Unlock()
	lockordera.R.Mu.Unlock()
}
