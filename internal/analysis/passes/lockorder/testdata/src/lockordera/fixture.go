// Package lockordera exercises the lockorder analyzer: cycles,
// self-edges, declared-rank violations, one-level forwarding, and the
// clean patterns the walker must not flag (early unlock on a return
// branch, sequential lock/unlock, embedded mutexes).
package lockordera

import "sync"

// Cycle pair: this package locks Left then Right; lockorderb locks
// Right then Left. The cycle is reported once, at the earliest edge.
type Left struct{ Mu sync.Mutex }

type Right struct{ Mu sync.Mutex }

var (
	L Left
	R Right
)

func LeftThenRight() {
	L.Mu.Lock()
	R.Mu.Lock() // want `potential deadlock: lock-order cycle lockordera\.Left\.Mu -> lockordera\.Right\.Mu -> lockordera\.Left\.Mu`
	R.Mu.Unlock()
	L.Mu.Unlock()
}

// Self-edge: two instances of the same lock ID nested.
type Node struct{ mu sync.Mutex }

func (n *Node) link(o *Node) {
	n.mu.Lock()
	o.mu.Lock() // want `lock lockordera\.Node\.mu acquired while an instance of lockordera\.Node\.mu is already held`
	o.mu.Unlock()
	n.mu.Unlock()
}

// Declared hierarchy: lo (10) must be acquired before hi (20).
type RankLo struct {
	mu sync.Mutex //joinlint:lockrank fix-lo 10
}

type RankHi struct {
	mu sync.Mutex //joinlint:lockrank fix-hi 20
}

var (
	lo RankLo
	hi RankHi
)

func loThenHi() { // increasing levels: clean
	lo.mu.Lock()
	hi.mu.Lock()
	hi.mu.Unlock()
	lo.mu.Unlock()
}

func hiThenLo() {
	hi.mu.Lock()
	lo.mu.Lock() // want `lock lockordera\.RankLo\.mu \(lockrank fix-lo 10\) acquired while holding lockordera\.RankHi\.mu \(lockrank fix-hi 20\)`
	lo.mu.Unlock()
	hi.mu.Unlock()
}

// Package-level ranked mutex, below the struct ranks: clean when taken
// first.
//
//joinlint:lockrank fix-global 5
var globalMu sync.Mutex

func globalThenLo() {
	globalMu.Lock()
	lo.mu.Lock()
	lo.mu.Unlock()
	globalMu.Unlock()
}

// One-level forwarding: outerThenInner never touches FwdInner.mu
// syntactically, but lockInner does, so the edge (and the rank
// violation) lands on the call site.
type FwdOuter struct {
	mu sync.Mutex //joinlint:lockrank fix-fwd-outer 50
}

type FwdInner struct {
	mu sync.Mutex //joinlint:lockrank fix-fwd-inner 40
}

var (
	fwdOuter FwdOuter
	fwdInner FwdInner
)

func lockInner() {
	fwdInner.mu.Lock()
	fwdInner.mu.Unlock()
}

func outerThenInner() {
	fwdOuter.mu.Lock()
	lockInner() // want `lock lockordera\.FwdInner\.mu \(lockrank fix-fwd-inner 40\) acquired while holding lockordera\.FwdOuter\.mu \(lockrank fix-fwd-outer 50\)`
	fwdOuter.mu.Unlock()
}

// Early unlock on a terminating branch: the walker must not treat
// EarlyHi.mu as held after the if, so locking EarlyLo afterwards is
// clean even though 60 -> 55 would violate the hierarchy.
type EarlyHi struct {
	mu sync.Mutex //joinlint:lockrank fix-early-hi 60
}

type EarlyLo struct {
	mu sync.Mutex //joinlint:lockrank fix-early-lo 55
}

var (
	earlyHi EarlyHi
	earlyLo EarlyLo
)

func earlyUnlock(cond bool) {
	earlyHi.mu.Lock()
	if cond {
		earlyHi.mu.Unlock()
		return
	}
	earlyHi.mu.Unlock()
	earlyLo.mu.Lock()
	earlyLo.mu.Unlock()
}

// Deferred unlock holds to function end: the later acquisition nests
// under the deferred one, producing an increasing (clean) edge.
func deferNest() {
	earlyLo.mu.Lock()
	defer earlyLo.mu.Unlock()
	earlyHi.mu.Lock()
	earlyHi.mu.Unlock()
}

// Embedded mutex: identity is the embedded field, usage is clean.
type Counter struct {
	sync.Mutex
	n int
}

func (c *Counter) Inc() {
	c.Lock()
	c.n++
	c.Unlock()
}

// Locals are not tracked: no stable identity, no diagnostics.
func localLocks() {
	var a, b sync.Mutex
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}

// A goroutine body is its own root: locks held at the spawn site are
// not held inside it, so this is not a self-edge.
func spawn() {
	var wg sync.WaitGroup
	lo.mu.Lock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		lo.mu.Lock()
		lo.mu.Unlock()
	}()
	lo.mu.Unlock()
	wg.Wait()
}
