// Package lockorder builds a whole-program lock-acquisition graph and
// reports ordering hazards: cycles (potential deadlocks), locks
// re-acquired while an instance of the same lock is already held, and
// violations of the declared lock hierarchy.
//
// Every sync.Mutex / sync.RWMutex that is a named struct field or a
// package-level var gets a stable identity `package.Type.field` (or
// `package.var`). Within each function the analyzer tracks the held set
// along a conservative, order-sensitive walk of the body — branch
// effects merge by union, branches that end in return discard their
// effects — and records an edge A → B whenever B is acquired while A is
// held. One level of call forwarding is followed, matching the obsnames
// forwarder machinery: a call to a same-package function while holding
// A contributes edges from A to every lock that function acquires
// directly in its own body. Edges are exported as package facts; the
// Finish hook assembles the global graph and reports every strongly
// connected cycle once.
//
// Declared hierarchies: a mutex declaration may carry
//
//	//joinlint:lockrank <name> <level>
//
// on its own line (or the line above). Ranked locks form a total order:
// acquiring a ranked lock while holding another ranked lock requires a
// strictly increasing level, so the sanctioned nesting is spelled out
// in DESIGN.md's hierarchy table instead of being rediscovered from
// bug reports. Unranked locks still get cycle detection.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"joinpebble/internal/analysis"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name:   "lockorder",
	Doc:    "lock acquisition order must be acyclic and respect declared lockrank hierarchies",
	Run:    run,
	Finish: finish,
}

// Edge is one observed nesting: To was acquired at Pos while From was
// held.
type Edge struct {
	From, To string
	Pos      token.Pos
}

// Rank is one declared hierarchy position for the lock identified by ID.
type Rank struct {
	ID    string
	Name  string
	Level int64
	Pos   token.Pos
}

// Fact is the per-package export: observed edges plus declared ranks.
type Fact struct {
	Edges []Edge
	Ranks []Rank
}

var rankRE = regexp.MustCompile(`^//joinlint:lockrank\s+(\S+)\s+(-?\d+)\s*$`)

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	var fact Fact

	// Declared ranks: a lockrank directive on (or directly above) a
	// mutex field or package-level mutex var declaration.
	directives := collectDirectives(pass)
	for _, file := range pass.Files {
		collectRanks(pass, file, directives, &fact)
	}

	// Summaries: the locks each package function acquires directly in
	// its own body, for one-level call forwarding.
	summaries := map[*types.Func][]Edge{} // Edge.From unused; To+Pos = direct acquisition
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			summaries[fn] = directAcquisitions(pass, fd.Body)
		}
	}

	// Held-set walk over every function declaration and literal.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				w := &walker{pass: pass, summaries: summaries, fact: &fact}
				w.walkStmts(body.List, newHeld())
			}
			return true
		})
	}

	if len(fact.Edges) > 0 || len(fact.Ranks) > 0 {
		pass.ExportFact(fact)
	}
	return nil
}

// held is the multiset of lock IDs currently held, with first-acquired
// order preserved for readable edge sources.
type held struct {
	count map[string]int
	order []string
}

func newHeld() *held { return &held{count: map[string]int{}} }

func (h *held) clone() *held {
	c := &held{count: make(map[string]int, len(h.count)), order: append([]string(nil), h.order...)}
	for k, v := range h.count {
		c.count[k] = v
	}
	return c
}

func (h *held) acquire(id string) {
	if h.count[id] == 0 {
		h.order = append(h.order, id)
	}
	h.count[id]++
}

func (h *held) release(id string) {
	if h.count[id] == 0 {
		return
	}
	h.count[id]--
	if h.count[id] == 0 {
		for i, v := range h.order {
			if v == id {
				h.order = append(h.order[:i], h.order[i+1:]...)
				break
			}
		}
	}
}

// union folds a branch's exit state into h: a lock held on any path out
// of the branch is conservatively held afterwards.
func (h *held) union(b *held) {
	for _, id := range b.order {
		if b.count[id] > h.count[id] {
			if h.count[id] == 0 {
				h.order = append(h.order, id)
			}
			h.count[id] = b.count[id]
		}
	}
}

type walker struct {
	pass      *analysis.Pass
	summaries map[*types.Func][]Edge
	fact      *Fact
}

// walkStmts walks a statement list in source order, maintaining the held
// set, and reports whether control can flow past the end of the list.
func (w *walker) walkStmts(list []ast.Stmt, h *held) bool {
	for _, s := range list {
		if !w.walkStmt(s, h) {
			return false
		}
	}
	return true
}

func (w *walker) walkStmt(s ast.Stmt, h *held) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.walkStmts(s.List, h)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, h)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, h)
		}
		w.scanExpr(s.Cond, h)
		then := h.clone()
		if w.walkStmts(s.Body.List, then) {
			h.union(then)
		}
		if s.Else != nil {
			els := h.clone()
			if w.walkStmt(s.Else, els) {
				h.union(els)
			}
		}
		return true
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, h)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, h)
		}
		body := h.clone()
		if w.walkStmts(s.Body.List, body) {
			if s.Post != nil {
				w.walkStmt(s.Post, body)
			}
			h.union(body)
		}
		return true
	case *ast.RangeStmt:
		w.scanExpr(s.X, h)
		body := h.clone()
		if w.walkStmts(s.Body.List, body) {
			h.union(body)
		}
		return true
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkCases(s, h)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(r, h)
		}
		return false
	case *ast.BranchStmt:
		// break/continue/goto leave the current straight-line region;
		// discarding the branch's tail keeps early-unlock-and-bail
		// patterns from poisoning the fallthrough state.
		return false
	case *ast.DeferStmt:
		// A deferred Unlock holds the lock to function end: no release.
		// Other deferred calls are scanned with the current held set —
		// an approximation, but deferred lock acquisition is rare and
		// over-reporting is the safe direction for a deadlock lint.
		if id, op := w.lockOp(s.Call); id != "" && (op == opUnlock) {
			return true
		}
		w.scanExpr(s.Call, h)
		return true
	case *ast.GoStmt:
		// The spawned body runs concurrently and is analyzed as its own
		// function literal root; locks held at the spawn site are not
		// held inside it.
		for _, arg := range s.Call.Args {
			w.scanExpr(arg, h)
		}
		return true
	case *ast.ExprStmt:
		w.scanExpr(s.X, h)
		return true
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.scanExpr(r, h)
		}
		for _, l := range s.Lhs {
			w.scanExpr(l, h)
		}
		return true
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		w.scanExpr(s, h)
		return true
	default:
		if s != nil {
			w.scanExpr(s, h)
		}
		return true
	}
}

// walkCases handles switch/type-switch/select: every clause starts from
// the entry state; clauses that fall off the end union back.
func (w *walker) walkCases(s ast.Stmt, h *held) bool {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, h)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, h)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, h)
		}
		w.scanExpr(s.Assign, h)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	anyFlows := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scanExpr(e, h)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.walkStmt(c.Comm, h)
			}
			stmts = c.Body
		}
		cs := h.clone()
		if w.walkStmts(stmts, cs) {
			h.union(cs)
			anyFlows = true
		}
	}
	// A switch without clauses (or where every clause terminates) may
	// still fall through when no case matches; stay conservative.
	return anyFlows || len(body.List) == 0 || !isSelect(s)
}

func isSelect(s ast.Stmt) bool {
	_, ok := s.(*ast.SelectStmt)
	return ok
}

// scanExpr scans a non-statement subtree for lock operations and calls
// in source order, skipping nested function literals (separate roots).
func (w *walker) scanExpr(n ast.Node, h *held) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		w.handleCall(call, h)
		return true
	})
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies call as a lock or unlock of a trackable lock,
// returning its stable ID ("" when the call is not a lock operation or
// the lock has no stable identity).
func (w *walker) lockOp(call *ast.CallExpr) (string, lockOpKind) {
	fn := analysis.CalleeFunc(w.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", opNone
	}
	var op lockOpKind
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", opNone
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", opNone
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	return w.lockID(sel), op
}

// lockID derives the stable identity of the lock a Lock/Unlock selector
// operates on: package.Type.field for named struct fields (including
// one level of embedding), package.var for package-level vars, "" for
// locals and unrecognized shapes.
func (w *walker) lockID(sel *ast.SelectorExpr) string {
	info := w.pass.TypesInfo
	if s, ok := info.Selections[sel]; ok && s.Obj() != nil {
		// sel is `x.Lock` with the mutex embedded somewhere under x, or
		// `x.mu.Lock` resolved as a method on the field. Walk the
		// selection to the field that carries the mutex.
		recv := s.Recv()
		idx := s.Index()
		if len(idx) > 1 {
			// Method promoted through embedded fields: the lock is the
			// innermost embedded field; credit it to the outermost named
			// type for a stable, readable identity.
			return fieldID(recv, idx[:len(idx)-1])
		}
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// s.mu.Lock(): x is the field selector s.mu.
		if fs, ok := info.Selections[x]; ok {
			if v, ok := fs.Obj().(*types.Var); ok && v.IsField() {
				if owner := namedOf(fs.Recv()); owner != nil {
					return typeID(owner) + "." + v.Name()
				}
			}
		}
		// pkg.mu.Lock(): package-qualified var.
		if obj := info.Uses[x.Sel]; obj != nil && analysis.IsPackageLevel(obj) && isMutexType(obj.Type()) {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			return ""
		}
		if analysis.IsPackageLevel(obj) && isMutexType(obj.Type()) {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		// s.Lock() on a type embedding the mutex.
		if owner := namedOf(obj.Type()); owner != nil {
			if f := embeddedMutexField(owner); f != "" {
				return typeID(owner) + "." + f
			}
		}
	}
	return ""
}

// handleCall processes one call under the current held set: lock ops
// mutate the set (recording edges on acquisition), and same-package
// calls forward one level into the callee's direct acquisitions.
func (w *walker) handleCall(call *ast.CallExpr, h *held) {
	if id, op := w.lockOp(call); op != opNone {
		switch op {
		case opLock:
			if id != "" {
				for _, from := range h.order {
					w.fact.Edges = append(w.fact.Edges, Edge{From: from, To: id, Pos: call.Pos()})
				}
				h.acquire(id)
			}
		case opUnlock:
			if id != "" {
				h.release(id)
			}
		}
		return
	}
	if len(h.order) == 0 {
		return
	}
	fn := analysis.CalleeFunc(w.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() != w.pass.Pkg {
		return
	}
	for _, acq := range w.summaries[fn] {
		for _, from := range h.order {
			w.fact.Edges = append(w.fact.Edges, Edge{From: from, To: acq.To, Pos: call.Pos()})
		}
	}
}

// directAcquisitions lists the locks a body acquires directly (no
// forwarding), for use as the one-level call summary.
func directAcquisitions(pass *analysis.Pass, body *ast.BlockStmt) []Edge {
	var out []Edge
	w := &walker{pass: pass}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, op := w.lockOp(call); op == opLock && id != "" {
			out = append(out, Edge{To: id, Pos: call.Pos()})
		}
		return true
	})
	return out
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func typeID(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func isMutexType(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// embeddedMutexField returns the name of a directly embedded
// sync.Mutex/RWMutex field of n, or "".
func embeddedMutexField(n *types.Named) string {
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() && isMutexType(f.Type()) {
			return f.Name()
		}
	}
	return ""
}

// fieldID resolves a selection's embedded-field path to pkg.Type.field.
func fieldID(recv types.Type, idx []int) string {
	owner := namedOf(recv)
	if owner == nil {
		return ""
	}
	st, ok := owner.Underlying().(*types.Struct)
	if !ok || len(idx) == 0 || idx[0] >= st.NumFields() {
		return ""
	}
	return typeID(owner) + "." + st.Field(idx[0]).Name()
}

// collectDirectives maps (file, line) to lockrank directives.
type directive struct {
	name  string
	level int64
	pos   token.Pos
}

func collectDirectives(pass *analysis.Pass) map[string]map[int]directive {
	out := map[string]map[int]directive{}
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := rankRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				lv, err := strconv.ParseInt(m[2], 10, 64)
				if err != nil {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = map[int]directive{}
				}
				out[pos.Filename][pos.Line] = directive{name: m[1], level: lv, pos: c.Pos()}
			}
		}
	}
	return out
}

// lookupDirective attaches directives to the mutex declarations they
// annotate: a directive counts for the declaration on its own line or
// the line above it.
func lookupDirective(dirs map[string]map[int]directive, pos token.Position) (directive, bool) {
	byLine := dirs[pos.Filename]
	if byLine == nil {
		return directive{}, false
	}
	if d, ok := byLine[pos.Line]; ok {
		return d, true
	}
	if d, ok := byLine[pos.Line-1]; ok {
		return d, true
	}
	return directive{}, false
}

func collectRanks(pass *analysis.Pass, file *ast.File, dirs map[string]map[int]directive, fact *Fact) {
	info := pass.TypesInfo
	pkgPath := pass.Pkg.Path()
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			// Ranked fields: find the enclosing named type via Defs.
			for _, f := range n.Fields.List {
				if len(f.Names) == 0 {
					continue
				}
				v, ok := info.Defs[f.Names[0]].(*types.Var)
				if !ok || !isMutexType(v.Type()) {
					continue
				}
				d, ok := lookupDirective(dirs, pass.Fset.Position(f.Pos()))
				if !ok {
					continue
				}
				owner := ownerTypeName(info, pass.Fset, file, f.Pos())
				if owner == "" {
					continue
				}
				id := pkgPath + "." + owner + "." + f.Names[0].Name
				fact.Ranks = append(fact.Ranks, Rank{ID: id, Name: d.name, Level: d.level, Pos: f.Pos()})
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				obj := info.Defs[name]
				if obj == nil || !analysis.IsPackageLevel(obj) || !isMutexType(obj.Type()) {
					continue
				}
				d, ok := lookupDirective(dirs, pass.Fset.Position(name.Pos()))
				if !ok {
					continue
				}
				fact.Ranks = append(fact.Ranks, Rank{ID: pkgPath + "." + name.Name, Name: d.name, Level: d.level, Pos: name.Pos()})
			}
		}
		return true
	})
}

// ownerTypeName finds the name of the type declaration lexically
// enclosing pos in file.
func ownerTypeName(info *types.Info, fset *token.FileSet, file *ast.File, pos token.Pos) string {
	var name string
	ast.Inspect(file, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		if ts.Pos() <= pos && pos <= ts.End() {
			name = ts.Name.Name
			return false
		}
		return true
	})
	return name
}

// finish assembles the global graph: rank-order violations on every
// edge between ranked locks, self-edges, and cycles over the rest.
func finish(fp *analysis.FinishPass) error {
	var edges []Edge
	rankByID := map[string]Rank{}
	nameToID := map[string]string{}
	var rankList []Rank
	for _, f := range fp.Facts {
		fact := f.Fact.(Fact)
		edges = append(edges, fact.Edges...)
		rankList = append(rankList, fact.Ranks...)
	}
	sort.Slice(rankList, func(i, j int) bool { return rankList[i].ID < rankList[j].ID })
	for _, r := range rankList {
		if prev, ok := rankByID[r.ID]; ok && prev.Level != r.Level {
			fp.Reportf(r.Pos, "lock %s declared with conflicting lockrank levels %d and %d", r.ID, prev.Level, r.Level)
			continue
		}
		if id, ok := nameToID[r.Name]; ok && id != r.ID {
			fp.Reportf(r.Pos, "lockrank name %q is already used by %s; hierarchy names must be unique", r.Name, id)
			continue
		}
		rankByID[r.ID] = r
		nameToID[r.Name] = r.ID
	}

	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].Pos < edges[j].Pos
	})

	// Dedup to one representative (first position) per ordered pair.
	rep := map[pair]Edge{}
	adj := map[string][]string{}
	for _, e := range edges {
		p := pair{e.From, e.To}
		if _, ok := rep[p]; ok {
			continue
		}
		rep[p] = e
		adj[e.From] = append(adj[e.From], e.To)
	}

	for p, e := range rep {
		_ = p
		if e.From == e.To {
			fp.Reportf(e.Pos, "lock %s acquired while an instance of %s is already held (self-deadlock unless instances are provably distinct and ordered)", e.To, e.From)
			continue
		}
		rf, okF := rankByID[e.From]
		rt, okT := rankByID[e.To]
		if okF && okT && rf.Level >= rt.Level {
			fp.Reportf(e.Pos, "lock %s (lockrank %s %d) acquired while holding %s (lockrank %s %d); declared hierarchy requires strictly increasing levels", e.To, rt.Name, rt.Level, e.From, rf.Name, rf.Level)
		}
	}

	reportCycles(fp, rep, adj, rankByID)
	return nil
}

type pair struct{ from, to string }

// reportCycles finds strongly connected components with more than one
// node (self-loops are reported separately) and reports each once, at
// the smallest edge position inside the component, with a readable
// cycle path. Components whose locks are all ranked are skipped: a
// cycle over ranked locks necessarily contains a rank violation, which
// the hierarchy check already reported edge-by-edge.
func reportCycles(fp *analysis.FinishPass, rep map[pair]Edge, adj map[string][]string, rankByID map[string]Rank) {
	nodes := make([]string, 0, len(adj))
	seen := map[string]bool{}
	for from, tos := range adj {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for _, to := range tos {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)
	for n := range adj {
		sort.Strings(adj[n])
	}

	// Tarjan's SCC, iterative over sorted nodes for determinism.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, wn := range adj[v] {
			if _, ok := index[wn]; !ok {
				strongconnect(wn)
				if low[wn] < low[v] {
					low[v] = low[wn]
				}
			} else if onStack[wn] && index[wn] < low[v] {
				low[v] = index[wn]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				sccs = append(sccs, comp)
			}
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}

	for _, comp := range sccs {
		sort.Strings(comp)
		allRanked := true
		for _, v := range comp {
			if _, ok := rankByID[v]; !ok {
				allRanked = false
				break
			}
		}
		if allRanked {
			continue
		}
		inComp := map[string]bool{}
		for _, v := range comp {
			inComp[v] = true
		}
		var pos token.Pos
		for p, e := range rep {
			if inComp[p.from] && inComp[p.to] && (pos == token.NoPos || e.Pos < pos) {
				pos = e.Pos
			}
		}
		path := cyclePath(comp, adj, inComp)
		fp.Reportf(pos, "potential deadlock: lock-order cycle %s", path)
	}
}

// cyclePath renders one concrete cycle through the component, starting
// from its smallest member.
func cyclePath(comp []string, adj map[string][]string, inComp map[string]bool) string {
	start := comp[0]
	var path []string
	cur := start
	visited := map[string]bool{}
	for {
		path = append(path, cur)
		if visited[cur] {
			break
		}
		visited[cur] = true
		nextNode := ""
		for _, to := range adj[cur] {
			if inComp[to] && (to == start || !visited[to]) {
				nextNode = to
				break
			}
		}
		if nextNode == "" {
			break
		}
		if nextNode == start {
			path = append(path, start)
			break
		}
		cur = nextNode
	}
	return strings.Join(path, " -> ") + fmt.Sprintf(" (%d locks involved)", len(comp))
}
