package serve

// The /v1 HTTP+JSON surface: request decoding, the shared
// admission → budget → scope → solve pipeline, and response/error
// mapping. The request schema is documented in DESIGN.md ("Service").

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"joinpebble/internal/engine"
	"joinpebble/internal/faultinject"
	"joinpebble/internal/graph"
	"joinpebble/internal/join"
	"joinpebble/internal/obs"
	"joinpebble/internal/solver"
	"joinpebble/internal/workload"
)

// Request-path counters (global: they count process-wide request
// outcomes; the per-request detail lives in each request's scope).
var (
	cSolveRequests = obs.Default.Counter("serve/solve/requests")
	cPlanRequests  = obs.Default.Counter("serve/plan/requests")
	cAuditRequests = obs.Default.Counter("serve/audit/requests")

	tSolveLatency = obs.Default.Timer("serve/solve/latency")
	tPlanLatency  = obs.Default.Timer("serve/plan/latency")
	tAuditLatency = obs.Default.Timer("serve/audit/latency")

	// cReqCanceled counts requests whose client disconnected while the
	// solve was running: the context cancellation propagated up through
	// the planner and no response was written. The disconnect test pins
	// this counter.
	cReqCanceled = obs.Default.Counter("serve/request/canceled")
	// cReqBad counts malformed requests (400).
	cReqBad = obs.Default.Counter("serve/request/bad")
	// cReqDeadline counts admitted requests whose budget expired without
	// a scheme (503) — only strict runs or pathological budgets land
	// here; degrading runs fall down the ladder instead.
	cReqDeadline = obs.Default.Counter("serve/request/deadline")
	// cReqError counts internal failures (500).
	cReqError = obs.Default.Counter("serve/request/errors")
	// cReqDraining counts requests bounced with 503 because the server
	// was draining.
	cReqDraining = obs.Default.Counter("serve/request/draining")
	// cReqFaults counts requests failed by an injected serve/handler
	// fault (503, retryable).
	cReqFaults = obs.Default.Counter("serve/request/faults")
	// Outcome provenance of successful solves.
	cReqDegraded = obs.Default.Counter("serve/request/degraded")
	cReqCached   = obs.Default.Counter("serve/request/cached")
)

// Per-request scope names (also the flight-recorder labels).
const (
	scopeSolve = "serve/solve"
	scopePlan  = "serve/plan"
	scopeAudit = "serve/audit"
)

// SolveRequest is the /v1/solve and /v1/plan request body, and the
// instance half of /v1/audit. An instance is either generated — Family
// names a registered predicate family, Left/Right are relation sizes,
// Seed/Skew drive the workload generator — or given: Family "bipartite"
// with Left/Right vertex counts and an explicit edge list.
type SolveRequest struct {
	Family string `json:"family"`
	Seed   int64  `json:"seed"`
	// Left and Right are relation sizes (generated families) or side
	// vertex counts (family "bipartite").
	Left  int `json:"left"`
	Right int `json:"right"`
	// Skew shapes generated workloads: the zipf s parameter for
	// equijoin, the cluster count for spatial (truncated), unused for
	// containment.
	Skew float64 `json:"skew,omitempty"`
	// Edges is the explicit edge list for family "bipartite":
	// [left, right] vertex index pairs.
	Edges [][2]int `json:"edges,omitempty"`
	// BudgetMS bounds the solve in milliseconds; 0 means the server's
	// per-request cap, larger values are clamped to it.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// Solver, when set, overrides routing (a solver.Named name).
	Solver string `json:"solver,omitempty"`
	// Strict disables the degradation ladder: the planned rung's failure
	// is the request's failure.
	Strict bool `json:"strict,omitempty"`
	// Pairs is the emission order to audit (/v1/audit only): [left,
	// right] tuple index pairs, one per join-graph edge.
	Pairs [][2]int `json:"pairs,omitempty"`
}

// AttemptJSON is one ladder rung try in a response.
type AttemptJSON struct {
	Solver    string `json:"solver"`
	Err       string `json:"err,omitempty"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// SolveResponse is the /v1/solve response body.
type SolveResponse struct {
	Family        string        `json:"family"`
	Route         string        `json:"route"`
	Solver        string        `json:"solver"`
	Reason        string        `json:"reason"`
	Quality       string        `json:"quality"`
	Degraded      bool          `json:"degraded"`
	Cached        bool          `json:"cached"`
	Cost          int           `json:"cost"`
	EffectiveCost int           `json:"effective_cost"`
	LowerBound    int           `json:"lower_bound"`
	UpperBound    int           `json:"upper_bound"`
	Perfect       bool          `json:"perfect"`
	Vertices      int           `json:"vertices"`
	Edges         int           `json:"edges"`
	Components    int           `json:"components"`
	Attempts      []AttemptJSON `json:"attempts,omitempty"`
	ElapsedNS     int64         `json:"elapsed_ns"`
}

// PlanResponse is the /v1/plan response body: the routing decision
// without the solve.
type PlanResponse struct {
	Family   string `json:"family"`
	Route    string `json:"route"`
	Solver   string `json:"solver"`
	Reason   string `json:"reason"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
}

// AuditResponse is the /v1/audit response body: the pebble-game score
// of the submitted emission order.
type AuditResponse struct {
	Family        string `json:"family"`
	Pairs         int    `json:"pairs"`
	Cost          int    `json:"cost"`
	EffectiveCost int    `json:"effective_cost"`
	Jumps         int    `json:"jumps"`
	Perfect       bool   `json:"perfect"`
}

// ErrorResponse is every non-2xx body. RetryAfterMS is set when the
// condition is transient (overload, drain, injected handler fault) and
// mirrors the Retry-After header at millisecond resolution.
type ErrorResponse struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// endpoint is one /v1 route: its bookkeeping metrics, its scope
// constructor (a closure so the obs scope name stays a compile-time
// constant at the NewScope call site), and the work under the pipeline.
type endpoint struct {
	requests *obs.Counter
	latency  *obs.Timer
	newScope func() *obs.Scope
	run      func(ctx context.Context, s *Server, req *SolveRequest) (any, error)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.serveV1(w, r, endpoint{
		requests: cSolveRequests,
		latency:  tSolveLatency,
		newScope: func() *obs.Scope { return obs.NewScope(scopeSolve) },
		run:      runSolve,
	})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.serveV1(w, r, endpoint{
		requests: cPlanRequests,
		latency:  tPlanLatency,
		newScope: func() *obs.Scope { return obs.NewScope(scopePlan) },
		run:      runPlan,
	})
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	s.serveV1(w, r, endpoint{
		requests: cAuditRequests,
		latency:  tAuditLatency,
		newScope: func() *obs.Scope { return obs.NewScope(scopeAudit) },
		run:      runAudit,
	})
}

// serveV1 is the shared pipeline: method check → drain check → decode →
// admission → budget → scope → fault site → endpoint work → response.
func (s *Server) serveV1(w http.ResponseWriter, r *http.Request, ep endpoint) {
	start := obs.Now()
	ep.requests.Inc()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only", 0)
		return
	}
	if s.draining.Load() {
		cReqDraining.Inc()
		writeError(w, http.StatusServiceUnavailable, "draining", s.admission.RetryAfter())
		return
	}
	var req SolveRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		cReqBad.Inc()
		writeError(w, http.StatusBadRequest, "decode request: "+err.Error(), 0)
		return
	}

	release, err := s.admission.Acquire(r.Context())
	if err != nil {
		if errors.Is(err, ErrOverload) {
			writeError(w, http.StatusTooManyRequests, err.Error(), s.admission.RetryAfter())
			return
		}
		// The client hung up while queued (counted in admission); there
		// is nobody to answer.
		return
	}
	defer release()

	// The request budget: the client's ask clamped to the server cap,
	// carved into ladder rungs by the planner's DegradePolicy.
	budget := s.cfg.RequestTimeout
	if req.BudgetMS > 0 {
		if d := time.Duration(req.BudgetMS) * time.Millisecond; d < budget {
			budget = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	sc := ep.newScope()
	ctx = obs.WithScope(ctx, sc)
	defer sc.Close()
	sc.Note("family", req.Family)

	if err := faultinject.FireContext(ctx, SiteHandler); err != nil {
		if r.Context().Err() != nil {
			cReqCanceled.Inc()
			return
		}
		cReqFaults.Inc()
		sc.Flag(obs.FlagFault)
		writeError(w, http.StatusServiceUnavailable, "transient handler fault: "+err.Error(), s.admission.RetryAfter())
		return
	}

	resp, err := ep.run(ctx, s, &req)
	if err != nil {
		switch {
		case errors.Is(err, errBadRequest):
			cReqBad.Inc()
			writeError(w, http.StatusBadRequest, err.Error(), 0)
		case r.Context().Err() != nil:
			// Client gone mid-solve: the cancellation rode ctx down into
			// the solver; there is no one to write to.
			cReqCanceled.Inc()
		case errors.Is(err, context.DeadlineExceeded):
			cReqDeadline.Inc()
			writeError(w, http.StatusServiceUnavailable, "budget exhausted: "+err.Error(), s.admission.RetryAfter())
		default:
			cReqError.Inc()
			sc.Flag(obs.FlagError)
			writeError(w, http.StatusInternalServerError, err.Error(), 0)
		}
		return
	}
	ep.latency.Observe(obs.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

// runSolve is the /v1/solve work: build the instance, run the planner
// ladder under the request budget, and shape the result.
func runSolve(ctx context.Context, s *Server, req *SolveRequest) (any, error) {
	in, err := s.buildInstance(req)
	if err != nil {
		return nil, err
	}
	p, err := s.planner(req)
	if err != nil {
		return nil, err
	}
	res, err := p.Run(ctx, in)
	if err != nil {
		return nil, err
	}
	out := &SolveResponse{
		Family:        res.Family,
		Route:         res.Route.String(),
		Solver:        res.Solver,
		Reason:        res.Reason,
		Quality:       res.Quality,
		Degraded:      res.Degraded,
		Cached:        res.Solver == engine.CachedSolverName,
		Cost:          res.Cost,
		EffectiveCost: res.EffectiveCost,
		LowerBound:    res.LowerBound,
		UpperBound:    res.UpperBound,
		Perfect:       res.Perfect,
		Vertices:      res.Vertices,
		Edges:         res.Edges,
		Components:    res.Components,
		ElapsedNS:     int64(res.Elapsed),
	}
	for _, a := range res.Attempts {
		out.Attempts = append(out.Attempts, AttemptJSON{Solver: a.Solver, Err: a.Err, ElapsedNS: int64(a.Elapsed)})
	}
	if out.Degraded {
		cReqDegraded.Inc()
	}
	if out.Cached {
		cReqCached.Inc()
	}
	return out, nil
}

// runPlan is the /v1/plan work: route without solving.
func runPlan(_ context.Context, s *Server, req *SolveRequest) (any, error) {
	in, err := s.buildInstance(req)
	if err != nil {
		return nil, err
	}
	p, err := s.planner(req)
	if err != nil {
		return nil, err
	}
	plan := p.Plan(in)
	g := in.Graph()
	return &PlanResponse{
		Family:   in.Family,
		Route:    plan.Route.String(),
		Solver:   plan.Solver.Name(),
		Reason:   plan.Reason,
		Vertices: g.N(),
		Edges:    g.M(),
	}, nil
}

// runAudit is the /v1/audit work: score the submitted emission order
// against the instance's join graph.
func runAudit(_ context.Context, s *Server, req *SolveRequest) (any, error) {
	in, err := s.buildInstance(req)
	if err != nil {
		return nil, err
	}
	pairs := make([]join.Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		pairs[i] = join.Pair{L: p[0], R: p[1]}
	}
	audit, err := in.AuditPairs(pairs)
	if err != nil {
		return nil, badRequestf("audit: %v", err)
	}
	return &AuditResponse{
		Family:        in.Family,
		Pairs:         audit.Pairs,
		Cost:          audit.Cost,
		EffectiveCost: audit.EffectiveCost,
		Jumps:         audit.Jumps,
		Perfect:       audit.Perfect,
	}, nil
}

// planner builds the per-request Planner: the server's ladder knobs,
// the request's strictness and solver override, and the configured (or
// process-wide) scheme cache.
func (s *Server) planner(req *SolveRequest) (*engine.Planner, error) {
	p := &engine.Planner{
		ExactLimit: s.cfg.ExactLimit,
		Degrade:    engine.DegradePolicy{Off: req.Strict, RungFraction: s.cfg.RungFraction},
		Cache:      s.cfg.Cache,
	}
	if req.Solver != "" {
		sv, err := solver.ByName(req.Solver)
		if err != nil {
			return nil, badRequestf("%v", err)
		}
		p.Solver = sv
	}
	return p, nil
}

// buildInstance materializes the request's join problem: an explicit
// bipartite graph, or a generated workload of a registered family.
func (s *Server) buildInstance(req *SolveRequest) (*engine.Instance, error) {
	if req.Left < 0 || req.Right < 0 {
		return nil, badRequestf("negative relation size %d/%d", req.Left, req.Right)
	}
	if req.Left > s.cfg.MaxRelation || req.Right > s.cfg.MaxRelation {
		return nil, badRequestf("relation size %d/%d exceeds cap %d", req.Left, req.Right, s.cfg.MaxRelation)
	}
	switch req.Family {
	case "bipartite":
		if len(req.Edges) > s.cfg.MaxEdges {
			return nil, badRequestf("%d edges exceeds cap %d", len(req.Edges), s.cfg.MaxEdges)
		}
		b := graph.NewBipartite(req.Left, req.Right)
		for _, e := range req.Edges {
			if e[0] < 0 || e[0] >= req.Left || e[1] < 0 || e[1] >= req.Right {
				return nil, badRequestf("edge [%d,%d] out of range %dx%d", e[0], e[1], req.Left, req.Right)
			}
			b.AddEdge(e[0], e[1])
		}
		return engine.FromBipartite("bipartite", b), nil
	case "":
		return nil, badRequestf("family is required")
	}
	if req.Left == 0 || req.Right == 0 {
		return nil, badRequestf("family %s needs non-zero relation sizes", req.Family)
	}
	var w engine.Workload
	switch req.Family {
	case "equijoin":
		w = workload.Equijoin{
			LeftSize:  req.Left,
			RightSize: req.Right,
			Domain:    max(2, int64(req.Left+req.Right)/4),
			Skew:      req.Skew,
		}
	case "containment":
		w = workload.SetContainment{
			LeftSize:   req.Left,
			RightSize:  req.Right,
			Universe:   64,
			LeftMax:    3,
			RightMax:   12,
			Correlated: true,
		}
	case "spatial":
		w = workload.Spatial{
			LeftSize:  req.Left,
			RightSize: req.Right,
			Span:      100,
			MaxExtent: 8,
			Clusters:  int(req.Skew),
		}
	default:
		return nil, badRequestf("unknown family %q", req.Family)
	}
	in, err := engine.Generate(w, req.Seed)
	if err != nil {
		return nil, badRequestf("generate %s: %v", req.Family, err)
	}
	return in, nil
}

// writeJSON writes v as the response body with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // best-effort response body
}

// writeError writes an ErrorResponse; retryAfter > 0 marks the failure
// transient and sets the Retry-After header (whole seconds, so clients
// that only read the header still back off).
func writeError(w http.ResponseWriter, code int, msg string, retryAfter time.Duration) {
	resp := ErrorResponse{Error: msg}
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retryAfter)))
		resp.RetryAfterMS = retryAfter.Milliseconds()
	}
	writeJSON(w, code, resp)
}
