package serve

import (
	"os"
	"testing"

	"joinpebble/internal/testutil/leakcheck"
)

// TestMain gates the suite on goroutine hygiene: after a clean run, any
// goroutine beyond the pre-test baseline — a handler outliving its
// request, an accept loop surviving Shutdown — fails the package. This
// is the dynamic side of the golife analyzer's static rule.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
