// Package serve is the joinpebble service layer: a long-running
// HTTP+JSON daemon surface (cmd/pebbled) over engine.Planner, plus the
// shared retrying client and the open-loop load generator (cmd/loadgen)
// that drives it.
//
// The request lifecycle is admission → ladder → drain:
//
//   - Admission: a bounded-concurrency semaphore with a bounded wait
//     queue (admit.go). Past capacity the server answers 429 with
//     Retry-After instead of queuing unboundedly.
//   - Ladder: every admitted request gets a per-request deadline
//     (min of its budget_ms and the server cap) carved into the
//     engine's DegradePolicy rungs, so a slow solve degrades down
//     exact → approx-1.25 → naive inside the deadline instead of
//     blowing through it. Client disconnects cancel the solve through
//     the request context and are counted, not answered.
//   - Drain: Shutdown stops accepting (readyz flips to 503), waits for
//     in-flight solves under the drain deadline, then the caller
//     flushes obs (cmdutil.Finish in pebbled).
//
// Every request runs under its own obs.Scope, so per-request counters,
// spans and degradation provenance land in the flight recorder exactly
// as one-shot CLI solves do; the debug endpoints (/debug/vars, the
// flight recorder, the scheme-cache stats) are mounted on the same mux.
package serve

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"joinpebble/internal/engine"
	"joinpebble/internal/faultinject"
	"joinpebble/internal/obs"
	"joinpebble/internal/obs/obshttp"
	"joinpebble/internal/schemecache"
)

// Fault-injection sites of the request lifecycle (registry in
// DESIGN.md). SiteAdmit lives in admit.go.
const (
	// SiteHandler fires at the top of every admitted request, under the
	// request context: an armed error is a transient handler failure
	// (503, retryable), an armed delay holds the request mid-flight —
	// the lever the drain and disconnect tests schedule against.
	SiteHandler = "serve/handler"
	// SiteDrain fires once at the start of Shutdown: an armed delay
	// stalls the drain against its deadline, an armed error is recorded
	// (serve/drain/faults) and the drain proceeds — a faulty drain hook
	// must never strand in-flight solves.
	SiteDrain = "serve/drain"
)

// Drain bookkeeping counters.
var (
	cDrainStarted  = obs.Default.Counter("serve/drain/started")
	cDrainFaults   = obs.Default.Counter("serve/drain/faults")
	cDrainInflight = obs.Default.Counter("serve/drain/inflight")
)

// Config is the service configuration; zero values take the documented
// defaults.
type Config struct {
	// Addr is the listen address (e.g. "localhost:8080", ":0").
	Addr string
	// MaxConcurrent bounds simultaneously running solves; 0 means
	// GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds callers waiting for a slot; 0 means
	// 4*MaxConcurrent. Past it, requests get 429 immediately.
	MaxQueue int
	// QueueTimeout bounds how long an admitted-to-queue caller waits
	// for a slot before 429; 0 means 1s.
	QueueTimeout time.Duration
	// RequestTimeout caps the per-request solve deadline; a request's
	// budget_ms is honored up to this. 0 means 5s.
	RequestTimeout time.Duration
	// DrainTimeout bounds Shutdown's wait for in-flight solves when the
	// caller's context has no deadline of its own. 0 means 10s.
	DrainTimeout time.Duration
	// RungFraction is DegradePolicy.RungFraction for every request:
	// the share of the remaining deadline a non-final ladder rung may
	// spend. 0 means the engine default (0.5).
	RungFraction float64
	// ExactLimit caps the exact rung's per-component edge count
	// (engine.Planner.ExactLimit); 0 means the solver default.
	ExactLimit int
	// MaxBody caps request body size in bytes; 0 means 1MiB.
	MaxBody int64
	// MaxRelation caps per-side relation/vertex counts in requests;
	// 0 means 4096 (the cross-product join-graph builders are
	// quadratic, so this bounds per-request work).
	MaxRelation int
	// MaxEdges caps raw-bipartite edge lists; 0 means 1<<20.
	MaxEdges int
	// Cache, when non-nil, overrides the process-wide scheme cache for
	// this server's planners (tests); nil uses engine.SharedCache.
	Cache *schemecache.Cache
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.MaxRelation <= 0 {
		c.MaxRelation = 4096
	}
	if c.MaxEdges <= 0 {
		c.MaxEdges = 1 << 20
	}
	return c
}

// Server is a running pebbled service bound to one listener.
type Server struct {
	cfg       Config
	admission *Admission
	ln        net.Listener
	srv       *http.Server
	draining  atomic.Bool
}

// Start binds cfg.Addr and begins serving in the background. The
// listener is bound synchronously so bind errors surface here; Addr
// reports the bound address (useful with ":0").
func Start(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:       cfg,
		admission: NewAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueTimeout),
		ln:        ln,
	}
	obshttp.Publish("joinpebble", obs.Default)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/audit", s.handleAudit)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	// The obshttp debug surface rides on the service port, so a live
	// pebbled exposes its metrics, flight recorder, and scheme-cache
	// stats without a second listener (-pprof still offers the full
	// pprof handler set separately).
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle(obshttp.FlightRecorderPath, obshttp.FlightRecorderHandler(obs.DefaultRecorder))
	cacheGet := engine.SharedCache
	if cfg.Cache != nil {
		c := cfg.Cache
		cacheGet = func() *schemecache.Cache { return c }
	}
	mux.Handle(obshttp.CachePath, obshttp.CacheHandlerFor(cacheGet))
	s.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	//joinlint:ignore golife deliberate daemon: the accept loop runs until Shutdown/Close closes the listener, which every caller owns via Server.Shutdown
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Shutdown
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// URL returns the service base URL ("http://host:port").
func (s *Server) URL() string { return "http://" + s.ln.Addr().String() }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight returns the number of admitted requests currently running.
func (s *Server) InFlight() int { return s.admission.InFlight() }

// Shutdown drains the server gracefully: readiness flips to 503, the
// listener stops accepting, and in-flight solves run to completion
// under the drain deadline (cfg.DrainTimeout, or ctx's own deadline if
// it has one). Past the deadline remaining connections are closed and
// the deadline error is returned. Admitted requests are never dropped
// by a drain that finishes in time — the drain test pins that.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil // second Shutdown: the first owns the drain
	}
	cDrainStarted.Inc()
	cDrainInflight.Add(int64(s.admission.InFlight()))
	if err := faultinject.FireContext(ctx, SiteDrain); err != nil {
		// A drain-hook fault is recorded, never fatal: stranding
		// in-flight solves because a shutdown callback failed would
		// invert the robustness contract.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		cDrainFaults.Inc()
	}
	dctx := ctx
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, s.cfg.DrainTimeout)
		defer cancel()
	}
	if err := s.srv.Shutdown(dctx); err != nil {
		s.srv.Close() //nolint:errcheck // past the drain deadline: abandon stragglers
		return fmt.Errorf("serve: drain: %w", err)
	}
	return nil
}

// handleHealthz reports liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness: 200 while accepting, 503 once
// draining — load balancers stop routing here before the listener
// actually closes.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// errors the handlers classify on.
var errBadRequest = errors.New("serve: bad request")

// badRequestf wraps errBadRequest so handler plumbing can map malformed
// inputs to 400 with errors.Is.
func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{errBadRequest}, args...)...)
}

// retryAfterSeconds renders d as a Retry-After header value: whole
// seconds, rounded up, at least 1 (the header has one-second
// granularity).
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
