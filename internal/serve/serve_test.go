package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"joinpebble/internal/faultinject"
	"joinpebble/internal/obs"
	"joinpebble/internal/schemecache"
	"joinpebble/internal/solver"
	"joinpebble/internal/testutil/leakcheck"
)

// startServer boots a server on a loopback ephemeral port and tears it
// down with the test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck // second shutdowns are no-ops
	})
	return s
}

// post sends one request without retries and decodes the response into
// out when the status matches want.
func post(t *testing.T, url string, req any, wantStatus int, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck // test helper
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d (body: %s)", url, resp.StatusCode, wantStatus, buf.String())
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %s response: %v (body: %s)", url, err, buf.String())
		}
	}
	return resp
}

func TestSolveEndpoint(t *testing.T) {
	s := startServer(t, Config{})
	var resp SolveResponse
	post(t, s.URL()+"/v1/solve", &SolveRequest{Family: "equijoin", Seed: 7, Left: 32, Right: 32}, http.StatusOK, &resp)
	if resp.Family != "equijoin" {
		t.Errorf("family = %q, want equijoin", resp.Family)
	}
	if resp.Cost <= 0 || resp.Edges <= 0 {
		t.Errorf("degenerate result: cost=%d edges=%d", resp.Cost, resp.Edges)
	}
	if !resp.Perfect {
		t.Errorf("equijoin solve not perfect: quality=%q solver=%q", resp.Quality, resp.Solver)
	}
	if resp.Degraded {
		t.Errorf("unexpected degradation: %+v", resp.Attempts)
	}
}

func TestPlanAndAuditEndpoints(t *testing.T) {
	s := startServer(t, Config{})

	var plan PlanResponse
	post(t, s.URL()+"/v1/plan", &SolveRequest{Family: "equijoin", Seed: 1, Left: 16, Right: 16}, http.StatusOK, &plan)
	if plan.Route != "perfect" {
		t.Errorf("equijoin planned route = %q, want perfect", plan.Route)
	}
	if plan.Edges <= 0 {
		t.Errorf("plan reports %d edges", plan.Edges)
	}

	// A single-edge bipartite graph audited in its only emission order.
	var audit AuditResponse
	post(t, s.URL()+"/v1/audit", &SolveRequest{
		Family: "bipartite", Left: 1, Right: 1,
		Edges: [][2]int{{0, 0}},
		Pairs: [][2]int{{0, 0}},
	}, http.StatusOK, &audit)
	if !audit.Perfect || audit.Pairs != 1 {
		t.Errorf("audit = %+v, want perfect single pair", audit)
	}
}

func TestBadRequests(t *testing.T) {
	s := startServer(t, Config{})

	post(t, s.URL()+"/v1/solve", &SolveRequest{Family: "no-such-family", Left: 4, Right: 4}, http.StatusBadRequest, nil)
	post(t, s.URL()+"/v1/solve", &SolveRequest{}, http.StatusBadRequest, nil)
	post(t, s.URL()+"/v1/solve", &SolveRequest{Family: "equijoin", Left: 1 << 20, Right: 4}, http.StatusBadRequest, nil)
	post(t, s.URL()+"/v1/audit", &SolveRequest{
		Family: "bipartite", Left: 1, Right: 1,
		Edges: [][2]int{{0, 0}},
		Pairs: [][2]int{{0, 0}, {0, 0}},
	}, http.StatusBadRequest, nil)

	resp, err := http.Get(s.URL() + "/v1/solve")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve = %d, want 405", resp.StatusCode)
	}
}

func TestHealthAndReady(t *testing.T) {
	s := startServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(s.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestOverloadReturns429 pins the admission contract: with one solve
// slot and no queue, a second concurrent request is answered 429 with
// Retry-After immediately — not queued until someone times out.
func TestOverloadReturns429(t *testing.T) {
	defer faultinject.Reset()
	s := startServer(t, Config{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 100 * time.Millisecond})

	// Hold the only slot with an injected in-handler delay.
	faultinject.Arm(SiteHandler, faultinject.Fault{Delay: 400 * time.Millisecond, Times: 1})
	firstDone := make(chan error, 1)
	go func() {
		var resp SolveResponse
		body, _ := json.Marshal(&SolveRequest{Family: "equijoin", Seed: 1, Left: 8, Right: 8})
		hresp, err := http.Post(s.URL()+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			firstDone <- err
			return
		}
		defer hresp.Body.Close()
		if hresp.StatusCode != http.StatusOK {
			firstDone <- fmt.Errorf("first request: status %d", hresp.StatusCode)
			return
		}
		firstDone <- json.NewDecoder(hresp.Body).Decode(&resp)
	}()
	waitFor(t, "first solve admitted", func() bool { return s.InFlight() == 1 })

	// The queue has one seat; fill it with a second held request so the
	// third is bounced instantly.
	second := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(&SolveRequest{Family: "equijoin", Seed: 2, Left: 8, Right: 8})
		hresp, err := http.Post(s.URL()+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			second <- -1
			return
		}
		hresp.Body.Close()
		second <- hresp.StatusCode
	}()
	waitFor(t, "second request queued", func() bool { return s.admission.Waiting() == 1 })

	start := obs.Now()
	var errResp ErrorResponse
	resp := post(t, s.URL()+"/v1/solve", &SolveRequest{Family: "equijoin", Seed: 3, Left: 8, Right: 8}, http.StatusTooManyRequests, &errResp)
	if d := obs.Since(start); d > 200*time.Millisecond {
		t.Errorf("overload answer took %v; rejection must be immediate", d)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if errResp.RetryAfterMS <= 0 {
		t.Errorf("429 body retry_after_ms = %d, want > 0", errResp.RetryAfterMS)
	}

	if err := <-firstDone; err != nil {
		t.Errorf("held request failed: %v", err)
	}
	// The queued request either won the freed slot (200) or timed out
	// its queue seat (429); both are valid admission outcomes.
	if code := <-second; code != http.StatusOK && code != http.StatusTooManyRequests {
		t.Errorf("queued request: status %d, want 200 or 429", code)
	}
}

// TestDeadlineBoundsDegradedSolve pins the budget contract: an injected
// stall on the planned rung is cut off by the rung's soft deadline and
// the request completes degraded, inside its budget, instead of hanging
// for the full stall.
func TestDeadlineBoundsDegradedSolve(t *testing.T) {
	defer faultinject.Reset()
	s := startServer(t, Config{RequestTimeout: 300 * time.Millisecond})

	// Stall only the first rung attempt for far longer than the budget;
	// the ladder must fall through and answer within the deadline.
	faultinject.Arm("engine/rung", faultinject.Fault{Delay: 10 * time.Second, Times: 1})
	start := obs.Now()
	var resp SolveResponse
	post(t, s.URL()+"/v1/solve", &SolveRequest{Family: "containment", Seed: 5, Left: 12, Right: 12}, http.StatusOK, &resp)
	elapsed := obs.Since(start)
	if !resp.Degraded {
		t.Errorf("stalled rung did not degrade: %+v", resp.Attempts)
	}
	if elapsed > time.Second {
		t.Errorf("request took %v, budget was 300ms — deadline did not bound the stall", elapsed)
	}
}

// TestGracefulDrain pins the shutdown contract: once draining, /readyz
// and /v1 answer 503 (with Retry-After) while the in-flight solve runs
// to completion and gets its 200 — no dropped responses.
func TestGracefulDrain(t *testing.T) {
	defer faultinject.Reset()
	s := startServer(t, Config{DrainTimeout: 5 * time.Second})

	// Hold one request in-flight across the drain, and stall the drain
	// hook long enough to observe the draining state from outside.
	faultinject.Arm(SiteHandler, faultinject.Fault{Delay: 300 * time.Millisecond, Times: 1})
	faultinject.Arm(SiteDrain, faultinject.Fault{Delay: 200 * time.Millisecond})

	inflight := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(&SolveRequest{Family: "equijoin", Seed: 9, Left: 8, Right: 8})
		hresp, err := http.Post(s.URL()+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			inflight <- -1
			return
		}
		hresp.Body.Close()
		inflight <- hresp.StatusCode
	}()
	waitFor(t, "solve admitted", func() bool { return s.InFlight() == 1 })

	drained := make(chan error, 1)
	go func() { drained <- s.Shutdown(context.Background()) }()
	waitFor(t, "draining", s.Draining)

	// While the drain hook stalls the listener is still accepting:
	// readiness and the API must both refuse with 503.
	resp, err := http.Get(s.URL() + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz during drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", resp.StatusCode)
	}
	var errResp ErrorResponse
	resp = post(t, s.URL()+"/v1/solve", &SolveRequest{Family: "equijoin", Seed: 10, Left: 8, Right: 8}, http.StatusServiceUnavailable, &errResp)
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After header")
	}

	if code := <-inflight; code != http.StatusOK {
		t.Errorf("in-flight request during drain: status %d, want 200 — a drain must not drop admitted work", code)
	}
	if err := <-drained; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestDrainFaultDoesNotStrand pins that an injected drain-hook error is
// recorded and the drain still completes cleanly.
func TestDrainFaultDoesNotStrand(t *testing.T) {
	defer faultinject.Reset()
	s := startServer(t, Config{DrainTimeout: 2 * time.Second})
	faultinject.Arm(SiteDrain, faultinject.Fault{Err: errors.New("injected drain fault")})

	before := cDrainFaults.Value()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown with drain fault: %v", err)
	}
	if got := cDrainFaults.Value() - before; got != 1 {
		t.Errorf("serve/drain/faults delta = %d, want 1", got)
	}
}

// TestAdmitFaultRejects pins the serve/admit chaos path: an armed
// admission fault turns into 429 without occupying a slot.
func TestAdmitFaultRejects(t *testing.T) {
	defer faultinject.Reset()
	s := startServer(t, Config{})
	faultinject.Arm(SiteAdmit, faultinject.Fault{Err: errors.New("injected admission fault")})

	post(t, s.URL()+"/v1/solve", &SolveRequest{Family: "equijoin", Seed: 1, Left: 8, Right: 8}, http.StatusTooManyRequests, nil)
	if n := s.InFlight(); n != 0 {
		t.Errorf("injected admission fault leaked a slot: InFlight = %d", n)
	}
	faultinject.Reset()
	post(t, s.URL()+"/v1/solve", &SolveRequest{Family: "equijoin", Seed: 1, Left: 8, Right: 8}, http.StatusOK, nil)
}

// TestHandlerFaultRetryable pins the serve/handler chaos path: an armed
// handler fault answers 503 with a retry hint.
func TestHandlerFaultRetryable(t *testing.T) {
	defer faultinject.Reset()
	s := startServer(t, Config{})
	faultinject.Arm(SiteHandler, faultinject.Fault{Err: errors.New("injected handler fault"), Times: 1})

	var errResp ErrorResponse
	resp := post(t, s.URL()+"/v1/solve", &SolveRequest{Family: "equijoin", Seed: 1, Left: 8, Right: 8}, http.StatusServiceUnavailable, &errResp)
	if resp.Header.Get("Retry-After") == "" {
		t.Error("handler-fault 503 without Retry-After header")
	}
	// Times: 1 — the retry succeeds, exactly what the retrying client
	// would do.
	post(t, s.URL()+"/v1/solve", &SolveRequest{Family: "equijoin", Seed: 1, Left: 8, Right: 8}, http.StatusOK, nil)
}

// TestClientDisconnectCancelsSolve pins the cancellation contract: a
// client that hangs up mid-solve cancels the solve through the request
// context and increments serve/request/canceled; no response is written.
//
// The leakcheck snapshot is taken after startServer, so the accept loop
// is baseline and the verification — which runs before the shutdown
// cleanup, cleanups being LIFO — asserts specifically that the handler
// goroutine serving the canceled solve does not outlive the disconnect.
func TestClientDisconnectCancelsSolve(t *testing.T) {
	defer faultinject.Reset()
	s := startServer(t, Config{})
	leakcheck.Check(t)

	// Hold the request mid-flight so the disconnect happens while the
	// handler is working.
	faultinject.Arm(SiteHandler, faultinject.Fault{Delay: 5 * time.Second, Times: 1})
	before := cReqCanceled.Value()

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(&SolveRequest{Family: "equijoin", Seed: 1, Left: 8, Right: 8})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.URL()+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	waitFor(t, "request admitted", func() bool { return s.InFlight() == 1 })
	cancel()
	if err := <-done; err == nil {
		t.Error("canceled request returned a response, want transport error")
	}
	waitFor(t, "cancellation counted", func() bool { return cReqCanceled.Value() > before })
	waitFor(t, "slot released", func() bool { return s.InFlight() == 0 })
}

// TestConcurrentSolvesSharedCache runs many concurrent solves of the
// same shape against one server sharing a single scheme cache, with
// parallel component solving on — the -race configuration of the
// service path. Later requests must be served from cache.
func TestConcurrentSolvesSharedCache(t *testing.T) {
	oldPar := solver.Parallelism
	solver.Parallelism = 2
	defer func() { solver.Parallelism = oldPar }()

	cache := schemecache.New(1<<20, 0)
	s := startServer(t, Config{MaxConcurrent: 4, MaxQueue: 64, QueueTimeout: 2 * time.Second, Cache: cache})

	// Same seed ⇒ same workload ⇒ same join-graph shape ⇒ same cache
	// key across all requests.
	solveOnce := func() (SolveResponse, error) {
		var resp SolveResponse
		body, err := json.Marshal(&SolveRequest{Family: "containment", Seed: 11, Left: 10, Right: 10})
		if err != nil {
			return resp, err
		}
		hresp, err := http.Post(s.URL()+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			return resp, err
		}
		defer hresp.Body.Close()
		if hresp.StatusCode != http.StatusOK {
			return resp, fmt.Errorf("status %d", hresp.StatusCode)
		}
		return resp, json.NewDecoder(hresp.Body).Decode(&resp)
	}

	const rounds, workers = 4, 8
	var cached, degraded int64
	var mu sync.Mutex
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := solveOnce()
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				if resp.Cached {
					cached++
				}
				if resp.Degraded {
					degraded++
				}
				mu.Unlock()
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("concurrent solve: %v", err)
		}
	}
	if cached == 0 {
		t.Errorf("0 of %d identical solves served from cache; cache stats: %+v", rounds*workers, cache.Stats())
	}
	if degraded != 0 {
		t.Errorf("%d solves degraded unexpectedly", degraded)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("shared cache recorded no hits: %+v", st)
	}
}

func TestAdmissionQueue(t *testing.T) {
	a := NewAdmission(1, 1, 50*time.Millisecond)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	if got := a.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}

	// Queue seat taken and timed out: ErrOverload after ~queueTimeout.
	start := obs.Now()
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverload) {
		t.Fatalf("queued Acquire = %v, want ErrOverload", err)
	}
	if d := obs.Since(start); d < 40*time.Millisecond {
		t.Errorf("queue timeout fired after %v, want ~50ms", d)
	}

	// A canceled waiter reports the cancellation, not overload.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx)
		errc <- err
	}()
	waitFor(t, "waiter queued", func() bool { return a.Waiting() == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Errorf("canceled Acquire = %v, want context.Canceled", err)
	}

	release()
	release() // idempotent
	if got := a.InFlight(); got != 0 {
		t.Errorf("InFlight after release = %d, want 0", got)
	}
}

func TestAdmissionQueueOverflow(t *testing.T) {
	a := NewAdmission(1, 0, time.Second)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer release()
	start := obs.Now()
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverload) {
		t.Fatalf("overflow Acquire = %v, want ErrOverload", err)
	}
	if d := obs.Since(start); d > 100*time.Millisecond {
		t.Errorf("zero-queue rejection took %v, want immediate", d)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 1}, {time.Millisecond, 1}, {time.Second, 1}, {1500 * time.Millisecond, 2}, {3 * time.Second, 3},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := obs.Now().Add(5 * time.Second)
	for obs.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
