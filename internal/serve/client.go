package serve

// The retrying client: the other half of the admission-control
// contract. The server answers overload with 429 + Retry-After in
// microseconds; a well-behaved caller backs off for the advertised
// wait (or capped exponential backoff with jitter when the server gave
// none) and retries inside its own budget. cmd/loadgen and the CI
// smoke job drive pebbled exclusively through this client, so the
// backoff policy is exercised, not just documented.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"joinpebble/internal/obs"
)

// Client retry counters.
var (
	cClientRetries  = obs.Default.Counter("serve/client/retries")
	cClientRejected = obs.Default.Counter("serve/client/rejected")
)

// StatusError is a non-2xx terminal response: the status the server
// answered and its ErrorResponse body, after any retries were spent.
type StatusError struct {
	Status int
	Msg    string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: status %d: %s", e.Status, e.Msg)
}

// Client is a retrying HTTP client for the /v1 API, safe for concurrent
// use (loadgen workers share one).
type Client struct {
	// Base is the service base URL ("http://host:port").
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// MaxAttempts bounds tries per call (first try included); 0 means 4.
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff; 0 means 25ms. Doubles
	// per retry, capped at MaxBackoff (0 means 2s), jittered ±50%, and
	// overridden upward by a server Retry-After.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	//joinlint:lockrank serve-client 60
	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient builds a client with the default retry policy; seed drives
// the backoff jitter, so a fixed-seed load run replays its schedule.
func NewClient(base string, seed int64) *Client {
	return &Client{Base: base, rng: rand.New(rand.NewSource(seed))}
}

// CallStats reports what one call cost: tries made and how many were
// answered with 429.
type CallStats struct {
	Attempts int
	Rejected int
}

// Solve posts req to /v1/solve with retries.
func (c *Client) Solve(ctx context.Context, req *SolveRequest) (*SolveResponse, CallStats, error) {
	var resp SolveResponse
	st, err := c.call(ctx, "/v1/solve", req, &resp)
	if err != nil {
		return nil, st, err
	}
	return &resp, st, nil
}

// Plan posts req to /v1/plan with retries.
func (c *Client) Plan(ctx context.Context, req *SolveRequest) (*PlanResponse, CallStats, error) {
	var resp PlanResponse
	st, err := c.call(ctx, "/v1/plan", req, &resp)
	if err != nil {
		return nil, st, err
	}
	return &resp, st, nil
}

// Audit posts req to /v1/audit with retries.
func (c *Client) Audit(ctx context.Context, req *SolveRequest) (*AuditResponse, CallStats, error) {
	var resp AuditResponse
	st, err := c.call(ctx, "/v1/audit", req, &resp)
	if err != nil {
		return nil, st, err
	}
	return &resp, st, nil
}

// call runs one logical request: post, classify, back off, retry.
// Transient answers — 429, 503, transport errors — are retried until
// MaxAttempts or ctx expires (the caller's budget bounds the whole
// call, sleeps included); everything else is terminal.
func (c *Client) call(ctx context.Context, path string, req *SolveRequest, out any) (CallStats, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return CallStats{}, fmt.Errorf("serve: marshal request: %w", err)
	}
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 4
	}
	var st CallStats
	var lastErr error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			cClientRetries.Inc()
		}
		st.Attempts++
		status, retryAfter, err := c.post(ctx, path, body, out)
		switch {
		case err == nil && status == http.StatusOK:
			return st, nil
		case ctx.Err() != nil:
			return st, ctx.Err()
		case err != nil:
			lastErr = err // transport error: retryable
		case status == http.StatusTooManyRequests:
			st.Rejected++
			cClientRejected.Inc()
			lastErr = retryAfter.err
		case status == http.StatusServiceUnavailable:
			lastErr = retryAfter.err
		default:
			// 400/405/500/...: retrying cannot help.
			return st, retryAfter.err
		}
		if try == attempts-1 {
			break
		}
		if err := c.sleep(ctx, try, retryAfter.wait); err != nil {
			return st, err
		}
	}
	return st, fmt.Errorf("serve: %d attempts exhausted: %w", st.Attempts, lastErr)
}

// serverHint carries a terminal error plus the server's suggested wait.
type serverHint struct {
	wait time.Duration
	err  error
}

// post is one HTTP exchange. A non-2xx status returns (status, hint,
// nil); hint.err is the *StatusError and hint.wait the server's
// Retry-After (body millisecond field preferred, header seconds
// fallback). Transport failures return a non-nil error.
func (c *Client) post(ctx context.Context, path string, body []byte, out any) (int, serverHint, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return 0, serverHint{}, fmt.Errorf("serve: build request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	hresp, err := hc.Do(hreq)
	if err != nil {
		return 0, serverHint{}, err
	}
	defer func() {
		io.Copy(io.Discard, hresp.Body) //nolint:errcheck // drain for keep-alive reuse
		hresp.Body.Close()
	}()
	if hresp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(hresp.Body).Decode(out); err != nil {
			return 0, serverHint{}, fmt.Errorf("serve: decode response: %w", err)
		}
		return http.StatusOK, serverHint{}, nil
	}
	var eresp ErrorResponse
	json.NewDecoder(hresp.Body).Decode(&eresp) //nolint:errcheck // body may be empty or non-JSON
	hint := serverHint{err: &StatusError{Status: hresp.StatusCode, Msg: eresp.Error}}
	if eresp.RetryAfterMS > 0 {
		hint.wait = time.Duration(eresp.RetryAfterMS) * time.Millisecond
	} else if secs, err := strconv.Atoi(hresp.Header.Get("Retry-After")); err == nil && secs > 0 {
		hint.wait = time.Duration(secs) * time.Second
	}
	return hresp.StatusCode, hint, nil
}

// sleep blocks for the retry wait: the server's suggestion when it gave
// one, else exponential backoff (BaseBackoff << try, capped) — either
// way jittered ±50% so synchronized clients do not re-stampede, and cut
// short by ctx.
func (c *Client) sleep(ctx context.Context, try int, suggested time.Duration) error {
	base := c.BaseBackoff
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	maxWait := c.MaxBackoff
	if maxWait <= 0 {
		maxWait = 2 * time.Second
	}
	wait := base << uint(try)
	if suggested > wait {
		wait = suggested
	}
	if wait > maxWait {
		wait = maxWait
	}
	c.mu.Lock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(1)) // literal-built client: fixed jitter seed
	}
	jitter := 0.5 + c.rng.Float64()
	c.mu.Unlock()
	wait = time.Duration(float64(wait) * jitter)
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
