package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"joinpebble/internal/obs"
)

// fakeServer scripts a sequence of statuses; after the script runs out
// it answers 200 with an empty SolveResponse.
func fakeServer(t *testing.T, script []int, retryAfterMS int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if int(n) <= len(script) {
			code := script[n-1]
			w.Header().Set("Content-Type", "application/json")
			if retryAfterMS > 0 {
				w.Header().Set("Retry-After", "1")
			}
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(ErrorResponse{Error: "scripted", RetryAfterMS: retryAfterMS}) //nolint:errcheck // test server
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(SolveResponse{Family: "equijoin"}) //nolint:errcheck // test server
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

// TestClientRetriesOverloadHonoringRetryAfter pins the client half of
// the admission contract: a 429 with a retry hint is retried after at
// least the advertised wait (modulo the -50% jitter bound).
func TestClientRetriesOverloadHonoringRetryAfter(t *testing.T) {
	srv, calls := fakeServer(t, []int{http.StatusTooManyRequests}, 60)
	c := NewClient(srv.URL, 42)

	start := obs.Now()
	resp, st, err := c.Solve(context.Background(), &SolveRequest{Family: "equijoin", Left: 4, Right: 4})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if resp.Family != "equijoin" {
		t.Errorf("response family = %q", resp.Family)
	}
	if st.Attempts != 2 || st.Rejected != 1 {
		t.Errorf("stats = %+v, want 2 attempts / 1 rejected", st)
	}
	if calls.Load() != 2 {
		t.Errorf("server saw %d calls, want 2", calls.Load())
	}
	// Jitter scales the wait by [0.5, 1.5); 60ms advertised ⇒ ≥ 30ms.
	if d := obs.Since(start); d < 30*time.Millisecond {
		t.Errorf("retry after %v, want >= 30ms (advertised 60ms, jitter floor 0.5x)", d)
	}
}

// TestClientRetries503 pins that transient 503s are retried too.
func TestClientRetries503(t *testing.T) {
	srv, _ := fakeServer(t, []int{http.StatusServiceUnavailable}, 5)
	c := NewClient(srv.URL, 1)
	c.BaseBackoff = time.Millisecond
	if _, st, err := c.Solve(context.Background(), &SolveRequest{Family: "equijoin", Left: 4, Right: 4}); err != nil {
		t.Fatalf("Solve: %v", err)
	} else if st.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", st.Attempts)
	}
}

// TestClientTerminalErrorsDoNotRetry pins that 400s are terminal: one
// call, a StatusError back.
func TestClientTerminalErrorsDoNotRetry(t *testing.T) {
	srv, calls := fakeServer(t, []int{http.StatusBadRequest}, 0)
	c := NewClient(srv.URL, 1)
	_, st, err := c.Solve(context.Background(), &SolveRequest{})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if st.Attempts != 1 || calls.Load() != 1 {
		t.Errorf("attempts = %d, calls = %d, want 1/1", st.Attempts, calls.Load())
	}
}

// TestClientRetriesAreBudgetBounded pins that the caller's context
// bounds the whole call, backoff sleeps included.
func TestClientRetriesAreBudgetBounded(t *testing.T) {
	srv, _ := fakeServer(t, []int{429, 429, 429, 429, 429, 429}, 5000)
	c := NewClient(srv.URL, 7)
	c.MaxAttempts = 10

	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := obs.Now()
	_, _, err := c.Solve(ctx, &SolveRequest{Family: "equijoin", Left: 4, Right: 4})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if d := obs.Since(start); d > time.Second {
		t.Errorf("budget-bounded call took %v, want ~80ms", d)
	}
}

// TestClientExhaustsRetries pins the give-up path: a server that only
// ever answers 429 costs MaxAttempts tries and reports the rejection.
func TestClientExhaustsRetries(t *testing.T) {
	srv, calls := fakeServer(t, []int{429, 429, 429, 429, 429, 429, 429, 429}, 1)
	c := NewClient(srv.URL, 3)
	c.MaxAttempts = 3
	c.BaseBackoff = time.Millisecond

	_, st, err := c.Solve(context.Background(), &SolveRequest{Family: "equijoin", Left: 4, Right: 4})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want wrapped StatusError 429", err)
	}
	if st.Attempts != 3 || st.Rejected != 3 {
		t.Errorf("stats = %+v, want 3 attempts / 3 rejected", st)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3", calls.Load())
	}
}
