package serve

// The open-loop load generator cmd/loadgen runs: arrivals follow a
// Poisson process at a fixed rate, independent of how fast the server
// answers — the generator never waits for a response before sending the
// next request, so a saturated server sees real queue pressure instead
// of the closed-loop self-throttling that hides overload. Instance
// sizes are heavy-tailed (bounded Pareto), families are mixed by
// weight, and everything derives from one seed, so a run is replayable.

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"joinpebble/internal/obs"
)

// loadLatency is the local metric the generator accumulates successful
// request latencies into (its own registry: client-side measurements
// must not mix into the server's metrics when both run in one test
// process).
const loadLatency = "loadgen/latency"

// LoadMix is one predicate family's share of the generated traffic.
type LoadMix struct {
	Family string
	Weight float64
	// Skew is passed through to SolveRequest.Skew.
	Skew float64
}

// DefaultMix is the standard traffic blend: mostly equijoins (skewed),
// the rest containment and spatial.
func DefaultMix() []LoadMix {
	return []LoadMix{
		{Family: "equijoin", Weight: 0.5, Skew: 1.2},
		{Family: "containment", Weight: 0.3},
		{Family: "spatial", Weight: 0.2, Skew: 3},
	}
}

// LoadConfig configures one load run; zero values take the documented
// defaults.
type LoadConfig struct {
	// Base is the service base URL.
	Base string
	// Rate is the arrival rate in requests/second; 0 means 50.
	Rate float64
	// Duration is how long arrivals are generated; 0 means 5s (requests
	// in flight at the end are still awaited and counted).
	Duration time.Duration
	// Seed drives arrivals, sizes, families, and per-request workload
	// seeds; the same seed replays the same request stream.
	Seed int64
	// BudgetMS is the per-request solve budget sent to the server;
	// 0 sends none (server cap applies).
	BudgetMS int64
	// MinSize/MaxSize bound the per-side relation sizes; the draw is a
	// bounded Pareto with tail index Alpha. Defaults 8/512, Alpha 1.5 —
	// most requests are small, the tail is fat.
	MinSize, MaxSize int
	Alpha            float64
	// Mix is the family blend; nil means DefaultMix.
	Mix []LoadMix
	// Client, when non-nil, overrides the default retrying client
	// (tests inject one with a tighter policy).
	Client *Client
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.MinSize <= 0 {
		c.MinSize = 8
	}
	if c.MaxSize < c.MinSize {
		c.MaxSize = 512
		if c.MaxSize < c.MinSize {
			c.MaxSize = c.MinSize
		}
	}
	if c.Alpha <= 0 {
		c.Alpha = 1.5
	}
	if len(c.Mix) == 0 {
		c.Mix = DefaultMix()
	}
	return c
}

// LoadReport is the outcome of one load run. Latency quantiles cover
// successful (admitted, completed) requests only — rejected requests
// answer in microseconds and would drag the percentiles down.
type LoadReport struct {
	Requests int64 `json:"requests"`
	OK       int64 `json:"ok"`
	Degraded int64 `json:"degraded"`
	Cached   int64 `json:"cached"`
	// Rejected counts requests that exhausted their retries on 429.
	Rejected int64 `json:"rejected"`
	// Retries counts individual retry attempts across all requests.
	Retries  int64 `json:"retries"`
	Canceled int64 `json:"canceled"`
	Errors   int64 `json:"errors"`

	P50NS         float64 `json:"p50_ns"`
	P99NS         float64 `json:"p99_ns"`
	P999NS        float64 `json:"p999_ns"`
	MeanNS        float64 `json:"mean_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`
	ElapsedNS     int64   `json:"elapsed_ns"`
}

// RunLoad drives one open-loop load run against cfg.Base and blocks
// until every spawned request resolved. Canceling ctx stops new
// arrivals and cancels requests still in flight.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	client := cfg.Client
	if client == nil {
		client = NewClient(cfg.Base, cfg.Seed)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	lat := obs.NewRegistry().Timer(loadLatency)

	var (
		wg  sync.WaitGroup
		rep LoadReport
		ok, degraded, cached, rejected, retries,
		canceled, errs atomic.Int64
	)
	start := obs.Now()
	deadline := start.Add(cfg.Duration)
	for obs.Now().Before(deadline) && ctx.Err() == nil {
		// Poisson arrivals: exponential inter-arrival gaps at the target
		// rate, slept off before each spawn.
		gap := time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		if !sleepCtx(ctx, gap) {
			break
		}
		req := cfg.genRequest(rng)
		rep.Requests++
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := obs.Now()
			resp, st, err := client.Solve(ctx, req)
			retries.Add(int64(st.Attempts - 1))
			if err != nil {
				var se *StatusError
				switch {
				case errors.As(err, &se) && se.Status == 429:
					rejected.Add(1)
				case ctx.Err() != nil:
					canceled.Add(1)
				default:
					errs.Add(1)
				}
				return
			}
			lat.Observe(obs.Since(t0))
			ok.Add(1)
			if resp.Degraded {
				degraded.Add(1)
			}
			if resp.Cached {
				cached.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := obs.Since(start)

	rep.OK = ok.Load()
	rep.Degraded = degraded.Load()
	rep.Cached = cached.Load()
	rep.Rejected = rejected.Load()
	rep.Retries = retries.Load()
	rep.Canceled = canceled.Load()
	rep.Errors = errs.Load()
	rep.P50NS = lat.Quantile(0.50)
	rep.P99NS = lat.Quantile(0.99)
	rep.P999NS = lat.Quantile(0.999)
	if n := lat.Count(); n > 0 {
		rep.MeanNS = float64(lat.Total()) / float64(n)
	}
	rep.ElapsedNS = int64(elapsed)
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.OK) / elapsed.Seconds()
	}
	return &rep, ctx.Err()
}

// genRequest draws one request: family by mix weight, sizes from the
// bounded Pareto tail, a fresh workload seed.
func (c LoadConfig) genRequest(rng *rand.Rand) *SolveRequest {
	var total float64
	for _, m := range c.Mix {
		total += m.Weight
	}
	pick := rng.Float64() * total
	mix := c.Mix[len(c.Mix)-1]
	for _, m := range c.Mix {
		if pick < m.Weight {
			mix = m
			break
		}
		pick -= m.Weight
	}
	return &SolveRequest{
		Family:   mix.Family,
		Seed:     rng.Int63(),
		Left:     c.paretoSize(rng),
		Right:    c.paretoSize(rng),
		Skew:     mix.Skew,
		BudgetMS: c.BudgetMS,
	}
}

// paretoSize draws a bounded-Pareto size in [MinSize, MaxSize]: density
// ∝ x^-(alpha+1), so the bulk sits at MinSize with a heavy tail toward
// MaxSize.
func (c LoadConfig) paretoSize(rng *rand.Rand) int {
	u := rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	size := int(float64(c.MinSize) * math.Pow(u, -1/c.Alpha))
	if size > c.MaxSize {
		size = c.MaxSize
	}
	if size < c.MinSize {
		size = c.MinSize
	}
	return size
}

// sleepCtx sleeps d or until ctx is done; false means the run is over.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
