package serve

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestRunLoadSmoke drives a short fixed-seed open-loop run against a
// live server and checks the accounting: every arrival is resolved into
// exactly one outcome bucket and nothing errors.
func TestRunLoadSmoke(t *testing.T) {
	s := startServer(t, Config{MaxConcurrent: 4, MaxQueue: 64, QueueTimeout: time.Second})

	rep, err := RunLoad(context.Background(), LoadConfig{
		Base:     s.URL(),
		Rate:     200,
		Duration: 400 * time.Millisecond,
		Seed:     1,
		MinSize:  4,
		MaxSize:  24,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Requests == 0 {
		t.Fatal("no arrivals generated")
	}
	if rep.Errors != 0 {
		t.Errorf("%d requests errored", rep.Errors)
	}
	if got := rep.OK + rep.Rejected + rep.Canceled + rep.Errors; got != rep.Requests {
		t.Errorf("outcomes %d != requests %d (ok %d rejected %d canceled %d errors %d)",
			got, rep.Requests, rep.OK, rep.Rejected, rep.Canceled, rep.Errors)
	}
	if rep.OK > 0 {
		if rep.P50NS <= 0 || rep.P99NS < rep.P50NS || rep.P999NS < rep.P99NS {
			t.Errorf("quantiles not monotone: p50=%v p99=%v p999=%v", rep.P50NS, rep.P99NS, rep.P999NS)
		}
		if rep.ThroughputRPS <= 0 {
			t.Errorf("throughput = %v with %d ok", rep.ThroughputRPS, rep.OK)
		}
	}
}

// TestRunLoadSheddingUnderOverload pins the overload behavior end to
// end: a one-slot server under heavy open-loop arrivals with a
// no-retry client must shed load as rejections, and every rejection is
// still accounted.
func TestRunLoadSheddingUnderOverload(t *testing.T) {
	s := startServer(t, Config{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 20 * time.Millisecond})

	client := NewClient(s.URL(), 1)
	client.MaxAttempts = 1 // no retries: rejections surface immediately
	rep, err := RunLoad(context.Background(), LoadConfig{
		Base:     s.URL(),
		Rate:     500,
		Duration: 300 * time.Millisecond,
		Seed:     2,
		MinSize:  16,
		MaxSize:  128,
		Client:   client,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Rejected == 0 {
		t.Errorf("500 rps against one slot produced no rejections: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Errorf("%d non-overload errors under overload", rep.Errors)
	}
	if got := rep.OK + rep.Rejected + rep.Canceled; got != rep.Requests {
		t.Errorf("outcomes %d != requests %d", got, rep.Requests)
	}
}

// TestGenRequestDeterministic pins generator determinism: the same seed
// yields the same request stream.
func TestGenRequestDeterministic(t *testing.T) {
	cfg := LoadConfig{}.withDefaults()
	a, b := rand.New(rand.NewSource(5)), rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		ra, rb := cfg.genRequest(a), cfg.genRequest(b)
		if ra.Family != rb.Family || ra.Seed != rb.Seed || ra.Left != rb.Left ||
			ra.Right != rb.Right || ra.Skew != rb.Skew {
			t.Fatalf("request %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
}

// TestParetoSizeBounds pins the heavy-tail size draw to its bounds and
// its shape: most mass near MinSize, some spread above it.
func TestParetoSizeBounds(t *testing.T) {
	cfg := LoadConfig{MinSize: 8, MaxSize: 64}.withDefaults()
	rng := rand.New(rand.NewSource(9))
	small, bigger := 0, 0
	for i := 0; i < 10000; i++ {
		size := cfg.paretoSize(rng)
		if size < 8 || size > 64 {
			t.Fatalf("size %d outside [8, 64]", size)
		}
		if size <= 16 {
			small++
		} else {
			bigger++
		}
	}
	if small <= bigger {
		t.Errorf("tail heavier than bulk: %d small vs %d bigger — not Pareto-shaped", small, bigger)
	}
	if bigger == 0 {
		t.Error("no tail at all: every draw was <= 2x MinSize")
	}
}
