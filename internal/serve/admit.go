package serve

// Admission control: a bounded-concurrency semaphore with a bounded
// wait queue in front of it. The service's capacity story is two
// numbers — how many solves run at once and how many callers may wait
// for a slot — and everything past them is rejected *immediately* with
// ErrOverload, which the HTTP layer turns into 429 + Retry-After. That
// keeps the overload response time flat: a saturated server answers
// "come back later" in microseconds instead of queuing unboundedly
// until every client times out (the behavior the overload test pins).

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"joinpebble/internal/faultinject"
	"joinpebble/internal/obs"
)

// SiteAdmit is the fault-injection site fired on every admission
// attempt (registry in DESIGN.md): an armed error rejects the request
// as overload without filling the semaphore, so the 429 path is
// drivable at any load.
const SiteAdmit = "serve/admit"

// ErrOverload reports that admission was denied: the semaphore is full
// and the wait queue is at capacity (or the queue wait timed out).
// Match with errors.Is; the HTTP layer maps it to 429.
var ErrOverload = errors.New("serve: overloaded")

// Admission outcome counters. Global, not request-scoped: rejected
// requests never open a scope, and capacity is a process-wide property.
var (
	cAdmitted     = obs.Default.Counter("serve/admit/admitted")
	cRejected     = obs.Default.Counter("serve/admit/rejected")
	cQueued       = obs.Default.Counter("serve/admit/queued")
	cQueueTimeout = obs.Default.Counter("serve/admit/queue_timeout")
	cAdmitCancel  = obs.Default.Counter("serve/admit/canceled")
)

// Admission is the bounded-concurrency gate. All methods are safe for
// concurrent use.
type Admission struct {
	slots        chan struct{} // buffered; one token per running request
	waiting      atomic.Int64  // callers blocked on a slot
	maxQueue     int64
	queueTimeout time.Duration
}

// NewAdmission builds a gate admitting maxConcurrent requests at once
// with at most maxQueue callers waiting, each for at most queueTimeout.
func NewAdmission(maxConcurrent, maxQueue int, queueTimeout time.Duration) *Admission {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	if queueTimeout <= 0 {
		queueTimeout = time.Second
	}
	return &Admission{
		slots:        make(chan struct{}, maxConcurrent),
		maxQueue:     int64(maxQueue),
		queueTimeout: queueTimeout,
	}
}

// Acquire admits the caller or rejects it. On success the returned
// release function must be called exactly once when the request
// finishes (it is idempotent, so a defer is safe). Rejections are
// ErrOverload (full queue, queue timeout, or an injected admission
// fault); a cancelled ctx returns ctx.Err() — the caller is gone, not
// rejected, and the distinction keeps the 429 counters honest.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	if err := faultinject.FireContext(ctx, SiteAdmit); err != nil {
		if ctx.Err() != nil {
			cAdmitCancel.Inc()
			return nil, ctx.Err()
		}
		cRejected.Inc()
		return nil, fmt.Errorf("%w: %w", ErrOverload, err)
	}
	select {
	case a.slots <- struct{}{}:
		cAdmitted.Inc()
		return a.releaseFunc(), nil
	default:
	}
	// No free slot: join the bounded wait queue, or bounce.
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		cRejected.Inc()
		return nil, fmt.Errorf("%w: %d solves in flight and %d callers queued", ErrOverload, cap(a.slots), a.maxQueue)
	}
	cQueued.Inc()
	defer a.waiting.Add(-1)
	t := time.NewTimer(a.queueTimeout)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		cAdmitted.Inc()
		return a.releaseFunc(), nil
	case <-t.C:
		cQueueTimeout.Inc()
		cRejected.Inc()
		return nil, fmt.Errorf("%w: queued longer than %s", ErrOverload, a.queueTimeout)
	case <-ctx.Done():
		cAdmitCancel.Inc()
		return nil, ctx.Err()
	}
}

// releaseFunc returns the slot exactly once however many times it is
// called — handlers release on the happy path and defer as a backstop.
func (a *Admission) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(func() { <-a.slots }) }
}

// InFlight returns the number of admitted, unreleased requests.
func (a *Admission) InFlight() int { return len(a.slots) }

// Waiting returns the current wait-queue depth.
func (a *Admission) Waiting() int64 { return a.waiting.Load() }

// RetryAfter is the wait the service suggests to a rejected caller:
// one queue timeout is the horizon after which the queue the caller
// could not join has provably turned over.
func (a *Admission) RetryAfter() time.Duration { return a.queueTimeout }
