// Package spatial implements the spatial attribute domain of §3.3:
// axis-aligned rectangles and convex polygons with overlap predicates, an
// R-tree and a sweep-line rectangle join as realistic spatial-join
// substrates, and the Lemma 3.4 construction realizing the worst-case
// G_n join graphs as rectangle-overlap instances.
package spatial

import (
	"fmt"
	"math"
)

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Rect is a closed axis-aligned rectangle [MinX,MaxX] x [MinY,MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points in either
// order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	return Rect{
		MinX: math.Min(x1, x2), MinY: math.Min(y1, y2),
		MaxX: math.Max(x1, x2), MaxY: math.Max(y1, y2),
	}
}

// Valid reports whether r is non-degenerate (Min <= Max on both axes and
// all coordinates finite).
func (r Rect) Valid() bool {
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY &&
		!math.IsNaN(r.MinX) && !math.IsInf(r.MinX, 0) &&
		!math.IsNaN(r.MinY) && !math.IsInf(r.MinY, 0) &&
		!math.IsNaN(r.MaxX) && !math.IsInf(r.MaxX, 0) &&
		!math.IsNaN(r.MaxY) && !math.IsInf(r.MaxY, 0)
}

// Overlaps reports whether r and s intersect (closed-rectangle semantics:
// shared boundary counts as overlap — the polygon-overlap predicate of
// §3.3).
func (r Rect) Overlaps(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	return r.MinX <= s.MinX && s.MaxX <= r.MaxX &&
		r.MinY <= s.MinY && s.MaxY <= r.MaxY
}

// ContainsPoint reports whether p lies in r (boundary inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	return r.MinX <= p.X && p.X <= r.MaxX && r.MinY <= p.Y && p.Y <= r.MaxY
}

// Union returns the bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX), MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX), MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Area returns the area of r.
func (r Rect) Area() float64 { return (r.MaxX - r.MinX) * (r.MaxY - r.MinY) }

// EnlargedArea returns the area of the union bounding box of r and s —
// the R-tree insertion heuristic's cost.
func (r Rect) EnlargedArea(s Rect) float64 { return r.Union(s).Area() }

func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Polygon is a convex polygon given by its vertices in counter-clockwise
// order. The spatial-overlap join of §3.3 is stated for polygons; convex
// polygons with a separating-axis test cover the workloads the cited
// spatial-join literature evaluates (most systems first join on bounding
// boxes anyway).
type Polygon struct {
	Verts []Point
}

// NewPolygon validates convexity and counter-clockwise orientation.
func NewPolygon(verts ...Point) (Polygon, error) {
	if len(verts) < 3 {
		return Polygon{}, fmt.Errorf("spatial: polygon needs >= 3 vertices, got %d", len(verts))
	}
	n := len(verts)
	for i := 0; i < n; i++ {
		a, b, c := verts[i], verts[(i+1)%n], verts[(i+2)%n]
		if cross(a, b, c) < 0 {
			return Polygon{}, fmt.Errorf("spatial: polygon not convex/CCW at vertex %d", (i+1)%n)
		}
	}
	return Polygon{Verts: verts}, nil
}

// cross returns the z-component of (b-a) x (c-a): positive for a left
// turn.
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// Bounds returns the bounding rectangle.
func (p Polygon) Bounds() Rect {
	r := Rect{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
	for _, v := range p.Verts {
		r.MinX = math.Min(r.MinX, v.X)
		r.MinY = math.Min(r.MinY, v.Y)
		r.MaxX = math.Max(r.MaxX, v.X)
		r.MaxY = math.Max(r.MaxY, v.Y)
	}
	return r
}

// Overlaps reports whether two convex polygons intersect (boundary
// touching counts), via the separating axis theorem: the polygons are
// disjoint iff some edge normal of either polygon separates them.
func (p Polygon) Overlaps(q Polygon) bool {
	return !hasSeparatingAxis(p, q) && !hasSeparatingAxis(q, p)
}

func hasSeparatingAxis(p, q Polygon) bool {
	n := len(p.Verts)
	for i := 0; i < n; i++ {
		a, b := p.Verts[i], p.Verts[(i+1)%n]
		// Outward normal of edge a->b for a CCW polygon.
		axis := Point{X: b.Y - a.Y, Y: -(b.X - a.X)}
		pMin, pMax := project(p, axis)
		qMin, qMax := project(q, axis)
		if pMax < qMin || qMax < pMin {
			return true
		}
	}
	return false
}

func project(p Polygon, axis Point) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range p.Verts {
		d := v.X*axis.X + v.Y*axis.Y
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
	}
	return lo, hi
}

// RectPolygon converts a rectangle into the equivalent convex polygon.
func RectPolygon(r Rect) Polygon {
	return Polygon{Verts: []Point{
		{r.MinX, r.MinY}, {r.MaxX, r.MinY}, {r.MaxX, r.MaxY}, {r.MinX, r.MaxY},
	}}
}
