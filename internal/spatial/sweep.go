package spatial

import "sort"

// IntersectingPairs reports all overlapping pairs (i, j) between two
// rectangle sets by a plane sweep along x: events are rectangle starts
// and ends; a start of an R-rectangle is checked against the active
// S-rectangles and vice versa. With closed-rectangle semantics, starts
// are processed before ends at equal x so touching rectangles count.
//
// The emission order — pairs discovered as the sweep advances — is the
// order a sweep-based spatial join produces tuples in, which is what the
// E15 experiment measures the pebbling cost of.
func IntersectingPairs(rs, ss []Rect) [][2]int {
	type event struct {
		x     float64
		start bool
		side  int // 0 = R, 1 = S
		idx   int
	}
	events := make([]event, 0, 2*(len(rs)+len(ss)))
	for i, r := range rs {
		events = append(events, event{x: r.MinX, start: true, side: 0, idx: i})
		events = append(events, event{x: r.MaxX, start: false, side: 0, idx: i})
	}
	for j, s := range ss {
		events = append(events, event{x: s.MinX, start: true, side: 1, idx: j})
		events = append(events, event{x: s.MaxX, start: false, side: 1, idx: j})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].x != events[b].x {
			return events[a].x < events[b].x
		}
		// Starts before ends so closed rectangles that touch still pair.
		if events[a].start != events[b].start {
			return events[a].start
		}
		if events[a].side != events[b].side {
			return events[a].side < events[b].side
		}
		return events[a].idx < events[b].idx
	})

	activeR := make(map[int]struct{})
	activeS := make(map[int]struct{})
	var out [][2]int
	for _, e := range events {
		if !e.start {
			if e.side == 0 {
				delete(activeR, e.idx)
			} else {
				delete(activeS, e.idx)
			}
			continue
		}
		if e.side == 0 {
			r := rs[e.idx]
			// Collect matches sorted for deterministic emission order.
			matches := make([]int, 0, len(activeS))
			for j := range activeS {
				if yOverlap(r, ss[j]) {
					matches = append(matches, j)
				}
			}
			sort.Ints(matches)
			for _, j := range matches {
				out = append(out, [2]int{e.idx, j})
			}
			activeR[e.idx] = struct{}{}
		} else {
			s := ss[e.idx]
			matches := make([]int, 0, len(activeR))
			for i := range activeR {
				if yOverlap(rs[i], s) {
					matches = append(matches, i)
				}
			}
			sort.Ints(matches)
			for _, i := range matches {
				out = append(out, [2]int{i, e.idx})
			}
			activeS[e.idx] = struct{}{}
		}
	}
	return out
}

func yOverlap(a, b Rect) bool {
	return a.MinY <= b.MaxY && b.MinY <= a.MaxY
}
