package spatial

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectOverlaps(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	cases := []struct {
		b    Rect
		want bool
	}{
		{NewRect(1, 1, 3, 3), true},
		{NewRect(2, 2, 3, 3), true}, // corner touch: closed semantics
		{NewRect(2.1, 0, 3, 2), false},
		{NewRect(0.5, 0.5, 1.5, 1.5), true}, // containment
		{NewRect(-1, -1, -0.5, -0.5), false},
		{NewRect(0, 2, 2, 4), true}, // edge touch
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v want %v", a, c.b, got, c.want)
		}
		if c.b.Overlaps(a) != c.want {
			t.Errorf("overlap not symmetric for %v", c.b)
		}
	}
}

func TestRectContains(t *testing.T) {
	a := NewRect(0, 0, 4, 4)
	if !a.Contains(NewRect(1, 1, 2, 2)) || !a.Contains(a) {
		t.Fatal("containment")
	}
	if a.Contains(NewRect(1, 1, 5, 2)) {
		t.Fatal("partial overlap is not containment")
	}
	if !a.ContainsPoint(Point{0, 0}) || a.ContainsPoint(Point{5, 0}) {
		t.Fatal("point containment")
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(3, 4, 1, 2)
	if r.MinX != 1 || r.MinY != 2 || r.MaxX != 3 || r.MaxY != 4 {
		t.Fatalf("got %v", r)
	}
	if !r.Valid() {
		t.Fatal("normalized rect must be valid")
	}
}

func TestRectUnionArea(t *testing.T) {
	a, b := NewRect(0, 0, 1, 1), NewRect(2, 2, 3, 3)
	u := a.Union(b)
	if u != NewRect(0, 0, 3, 3) {
		t.Fatalf("union=%v", u)
	}
	if a.Area() != 1 || u.Area() != 9 {
		t.Fatal("area")
	}
	if a.EnlargedArea(b) != 9 {
		t.Fatal("enlarged area")
	}
}

func TestPolygonValidation(t *testing.T) {
	if _, err := NewPolygon(Point{0, 0}, Point{1, 0}); err == nil {
		t.Fatal("two points are not a polygon")
	}
	// Clockwise square must be rejected.
	if _, err := NewPolygon(Point{0, 0}, Point{0, 1}, Point{1, 1}, Point{1, 0}); err == nil {
		t.Fatal("CW orientation must be rejected")
	}
	// Non-convex "arrow" must be rejected.
	if _, err := NewPolygon(Point{0, 0}, Point{2, 0}, Point{1, 0.5}, Point{2, 2}); err == nil {
		t.Fatal("non-convex polygon must be rejected")
	}
	if _, err := NewPolygon(Point{0, 0}, Point{1, 0}, Point{0, 1}); err != nil {
		t.Fatalf("CCW triangle rejected: %v", err)
	}
}

func TestPolygonOverlapBasic(t *testing.T) {
	tri1, _ := NewPolygon(Point{0, 0}, Point{2, 0}, Point{0, 2})
	tri2, _ := NewPolygon(Point{1, 1}, Point{3, 1}, Point{1, 3})
	tri3, _ := NewPolygon(Point{5, 5}, Point{6, 5}, Point{5, 6})
	if !tri1.Overlaps(tri2) {
		t.Fatal("overlapping triangles reported disjoint")
	}
	if tri1.Overlaps(tri3) {
		t.Fatal("distant triangles reported overlapping")
	}
	if !tri1.Overlaps(tri1) {
		t.Fatal("self overlap")
	}
}

func TestPolygonOverlapMatchesRects(t *testing.T) {
	// SAT on rectangle polygons must agree with the direct rectangle test.
	rng := rand.New(rand.NewSource(1))
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	err := quick.Check(func(ax, ay, bx, by uint8) bool {
		a := NewRect(float64(ax%10), float64(ay%10), float64(ax%10)+2, float64(ay%10)+2)
		b := NewRect(float64(bx%10), float64(by%10), float64(bx%10)+3, float64(by%10)+1)
		return a.Overlaps(b) == RectPolygon(a).Overlaps(RectPolygon(b))
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPolygonBounds(t *testing.T) {
	tri, _ := NewPolygon(Point{0, 0}, Point{4, 1}, Point{1, 3})
	if got := tri.Bounds(); got != NewRect(0, 0, 4, 3) {
		t.Fatalf("bounds=%v", got)
	}
}

func randomRects(rng *rand.Rand, n int, span float64) []Rect {
	out := make([]Rect, n)
	for i := range out {
		x, y := rng.Float64()*span, rng.Float64()*span
		out[i] = NewRect(x, y, x+rng.Float64()*5, y+rng.Float64()*5)
	}
	return out
}

func TestRTreeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		data := randomRects(rng, 200, 50)
		tree := NewRTree(8)
		for i, r := range data {
			tree.Insert(r, i)
		}
		if tree.Len() != len(data) {
			t.Fatal("Len mismatch")
		}
		for q := 0; q < 20; q++ {
			query := randomRects(rng, 1, 50)[0]
			got := tree.Search(query)
			var want []int
			for i, r := range data {
				if r.Overlaps(query) {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d query %d: got %d results want %d", trial, q, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d: result mismatch at %d", trial, i)
				}
			}
		}
	}
}

func TestRTreeGrowsInHeight(t *testing.T) {
	tree := NewRTree(4)
	rng := rand.New(rand.NewSource(3))
	for i, r := range randomRects(rng, 500, 100) {
		tree.Insert(r, i)
	}
	if tree.Height() < 3 {
		t.Fatalf("500 items in fan-out-4 tree should be at least 3 levels, got %d", tree.Height())
	}
	// All 500 must be findable via a universal query.
	if got := tree.Search(NewRect(-10, -10, 200, 200)); len(got) != 500 {
		t.Fatalf("universal query found %d of 500", len(got))
	}
}

func TestRTreeEmptyAndSingle(t *testing.T) {
	tree := NewRTree(4)
	if got := tree.Search(NewRect(0, 0, 1, 1)); got != nil {
		t.Fatal("empty tree must return nil")
	}
	tree.Insert(NewRect(0, 0, 1, 1), 7)
	if got := tree.Search(NewRect(0.5, 0.5, 2, 2)); len(got) != 1 || got[0] != 7 {
		t.Fatalf("got %v", got)
	}
	if got := tree.Search(NewRect(5, 5, 6, 6)); len(got) != 0 {
		t.Fatal("miss must return empty")
	}
}

func TestRTreeDuplicateRects(t *testing.T) {
	tree := NewRTree(4)
	r := NewRect(1, 1, 2, 2)
	for i := 0; i < 20; i++ {
		tree.Insert(r, i)
	}
	if got := tree.Search(r); len(got) != 20 {
		t.Fatalf("duplicates: found %d of 20", len(got))
	}
}

func TestSweepMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		rs := randomRects(rng, 40, 30)
		ss := randomRects(rng, 50, 30)
		got := IntersectingPairs(rs, ss)
		seen := make(map[[2]int]bool, len(got))
		for _, p := range got {
			if seen[p] {
				t.Fatalf("trial %d: duplicate pair %v", trial, p)
			}
			seen[p] = true
		}
		count := 0
		for i, r := range rs {
			for j, s := range ss {
				if r.Overlaps(s) {
					count++
					if !seen[[2]int{i, j}] {
						t.Fatalf("trial %d: missing pair (%d,%d)", trial, i, j)
					}
				}
			}
		}
		if count != len(got) {
			t.Fatalf("trial %d: %d pairs want %d", trial, len(got), count)
		}
	}
}

func TestSweepTouchingRectangles(t *testing.T) {
	rs := []Rect{NewRect(0, 0, 1, 1)}
	ss := []Rect{NewRect(1, 1, 2, 2)} // corner touch
	if got := IntersectingPairs(rs, ss); len(got) != 1 {
		t.Fatalf("touching rectangles must pair, got %v", got)
	}
}

func TestRealizeSpiderJoinGraph(t *testing.T) {
	for n := 1; n <= 8; n++ {
		inst := RealizeSpider(n)
		if len(inst.R) != n+1 || len(inst.S) != n {
			t.Fatalf("n=%d: sizes %dx%d", n, len(inst.R), len(inst.S))
		}
		pairs := inst.JoinPairs()
		if len(pairs) != 2*n {
			t.Fatalf("n=%d: %d pairs want 2n", n, len(pairs))
		}
		want := make(map[[2]int]bool)
		for i := 0; i < n; i++ {
			want[[2]int{0, i}] = true     // center overlaps middle i
			want[[2]int{1 + i, i}] = true // leaf i overlaps middle i
		}
		for _, p := range pairs {
			if !want[p] {
				t.Fatalf("n=%d: unexpected pair %v", n, p)
			}
		}
	}
}

func TestRealizeSpiderPolygonsJoinGraph(t *testing.T) {
	// Lemma 3.4 over actual polygons: the chamfered layout must realize
	// exactly the same join graph as the rectangle layout.
	for n := 1; n <= 8; n++ {
		inst := RealizeSpiderPolygons(n)
		pairs := inst.JoinPairs()
		if len(pairs) != 2*n {
			t.Fatalf("n=%d: %d pairs want 2n", n, len(pairs))
		}
		want := make(map[[2]int]bool)
		for i := 0; i < n; i++ {
			want[[2]int{0, i}] = true
			want[[2]int{1 + i, i}] = true
		}
		for _, p := range pairs {
			if !want[p] {
				t.Fatalf("n=%d: unexpected polygon pair %v", n, p)
			}
		}
		// The polygons must be genuinely non-rectangular.
		for _, p := range inst.R {
			if len(p.Verts) != 8 {
				t.Fatalf("chamfered polygon has %d vertices", len(p.Verts))
			}
		}
	}
}

func TestChamferPreservesOverlapOnRandomRects(t *testing.T) {
	// Property: with chamfer depth well below every gap and overlap
	// depth, the polygon join graph equals the rectangle join graph.
	// Generate rects on an integer grid so depths are >= 1 > 4*0.1.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		mk := func() Rect {
			x, y := float64(rng.Intn(10)), float64(rng.Intn(10))
			return NewRect(x, y, x+float64(1+rng.Intn(4)), y+float64(1+rng.Intn(4)))
		}
		a, b := mk(), mk()
		// Skip boundary-touching pairs: chamfering legitimately changes
		// corner-touch cases, which integer coordinates make common.
		if a.Overlaps(b) != chamfer(a, 0.1).Overlaps(chamfer(b, 0.1)) {
			if touchesOnly(a, b) {
				continue
			}
			t.Fatalf("trial %d: chamfer changed overlap of %v and %v", trial, a, b)
		}
	}
}

func touchesOnly(a, b Rect) bool {
	return a.Overlaps(b) &&
		(a.MinX == b.MaxX || b.MinX == a.MaxX || a.MinY == b.MaxY || b.MinY == a.MaxY)
}

func TestRealizeSpiderRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RealizeSpider(0) must panic")
		}
	}()
	RealizeSpider(0)
}

func TestRTreeRejectsInvalidRect(t *testing.T) {
	tree := NewRTree(4)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid rect must panic")
		}
	}()
	tree.Insert(Rect{MinX: 2, MaxX: 1}, 0)
}
