package spatial

import "sort"

// RTree is an in-memory R-tree over rectangles with integer payload ids,
// built by quadratic-split insertion (Guttman). It backs the
// index-nested-loop spatial join in the join layer, standing in for the
// disk-based spatial access methods the paper's citations ([3], [8],
// [13]) assume.
type RTree struct {
	root     *rtreeNode
	maxFill  int
	minFill  int
	numItems int
}

type rtreeNode struct {
	bounds   Rect
	parent   *rtreeNode
	leaf     bool
	children []*rtreeNode // internal nodes
	entries  []rtreeEntry // leaf nodes
}

type rtreeEntry struct {
	rect Rect
	id   int
}

// NewRTree returns an empty tree with the given maximum node fan-out
// (values below 4 are raised to 4).
func NewRTree(maxFill int) *RTree {
	if maxFill < 4 {
		maxFill = 4
	}
	return &RTree{
		root:    &rtreeNode{leaf: true},
		maxFill: maxFill,
		minFill: maxFill / 2,
	}
}

// Len returns the number of stored rectangles.
func (t *RTree) Len() int { return t.numItems }

// Insert adds rect with the given payload id.
func (t *RTree) Insert(rect Rect, id int) {
	if !rect.Valid() {
		panic("spatial: inserting invalid rectangle")
	}
	t.numItems++
	n := t.chooseLeaf(rect)
	n.entries = append(n.entries, rtreeEntry{rect: rect, id: id})
	t.adjustUpward(n)
}

// chooseLeaf descends to the leaf whose bounds need least enlargement,
// breaking ties by smaller area.
func (t *RTree) chooseLeaf(rect Rect) *rtreeNode {
	n := t.root
	for !n.leaf {
		best := n.children[0]
		bestGrow := best.bounds.EnlargedArea(rect) - best.bounds.Area()
		for _, c := range n.children[1:] {
			grow := c.bounds.EnlargedArea(rect) - c.bounds.Area()
			if grow < bestGrow || (grow == bestGrow && c.bounds.Area() < best.bounds.Area()) {
				best, bestGrow = c, grow
			}
		}
		n = best
	}
	return n
}

// adjustUpward recomputes bounds from n to the root, splitting
// overflowing nodes on the way.
func (t *RTree) adjustUpward(n *rtreeNode) {
	for n != nil {
		n.recomputeBounds()
		if t.overflowing(n) {
			t.splitNode(n)
		}
		n = n.parent
	}
}

func (t *RTree) overflowing(n *rtreeNode) bool {
	if n.leaf {
		return len(n.entries) > t.maxFill
	}
	return len(n.children) > t.maxFill
}

// splitNode replaces an overflowing node by two quadratic-split halves,
// growing a new root when the old root splits.
func (t *RTree) splitNode(n *rtreeNode) {
	a, b := t.splitHalves(n)
	if n.parent == nil {
		newRoot := &rtreeNode{leaf: false, children: []*rtreeNode{a, b}}
		a.parent, b.parent = newRoot, newRoot
		newRoot.recomputeBounds()
		t.root = newRoot
		return
	}
	p := n.parent
	for i, c := range p.children {
		if c == n {
			p.children[i] = a
			break
		}
	}
	p.children = append(p.children, b)
	a.parent, b.parent = p, p
	// The caller's upward walk continues at p and will recompute its
	// bounds and split it if it now overflows.
}

func (t *RTree) splitHalves(n *rtreeNode) (a, b *rtreeNode) {
	if n.leaf {
		rects := make([]Rect, len(n.entries))
		for i, e := range n.entries {
			rects[i] = e.rect
		}
		ga, gb := quadraticPartition(rects, t.minFill)
		a = &rtreeNode{leaf: true}
		b = &rtreeNode{leaf: true}
		for _, i := range ga {
			a.entries = append(a.entries, n.entries[i])
		}
		for _, i := range gb {
			b.entries = append(b.entries, n.entries[i])
		}
	} else {
		rects := make([]Rect, len(n.children))
		for i, c := range n.children {
			rects[i] = c.bounds
		}
		ga, gb := quadraticPartition(rects, t.minFill)
		a = &rtreeNode{leaf: false}
		b = &rtreeNode{leaf: false}
		for _, i := range ga {
			n.children[i].parent = a
			a.children = append(a.children, n.children[i])
		}
		for _, i := range gb {
			n.children[i].parent = b
			b.children = append(b.children, n.children[i])
		}
	}
	a.recomputeBounds()
	b.recomputeBounds()
	return a, b
}

// quadraticPartition splits indices 0..len(rects)-1 into two groups by
// Guttman's quadratic method: seed with the pair wasting the most area,
// then assign each remaining rect to the group needing less enlargement.
// When one group must absorb all remaining rects to reach minFill, the
// rest are forced into it.
func quadraticPartition(rects []Rect, minFill int) (ga, gb []int) {
	n := len(rects)
	seedA, seedB := 0, 1
	worst := -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			waste := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	ga, gb = []int{seedA}, []int{seedB}
	boundsA, boundsB := rects[seedA], rects[seedB]
	remaining := make([]int, 0, n-2)
	for i := 0; i < n; i++ {
		if i != seedA && i != seedB {
			remaining = append(remaining, i)
		}
	}
	for k, i := range remaining {
		left := len(remaining) - k
		if len(ga)+left == minFill {
			for _, j := range remaining[k:] {
				ga = append(ga, j)
			}
			return ga, gb
		}
		if len(gb)+left == minFill {
			for _, j := range remaining[k:] {
				gb = append(gb, j)
			}
			return ga, gb
		}
		growA := boundsA.EnlargedArea(rects[i]) - boundsA.Area()
		growB := boundsB.EnlargedArea(rects[i]) - boundsB.Area()
		if growA < growB || (growA == growB && len(ga) <= len(gb)) {
			ga = append(ga, i)
			boundsA = boundsA.Union(rects[i])
		} else {
			gb = append(gb, i)
			boundsB = boundsB.Union(rects[i])
		}
	}
	return ga, gb
}

func (n *rtreeNode) recomputeBounds() {
	first := true
	if n.leaf {
		for _, e := range n.entries {
			if first {
				n.bounds = e.rect
				first = false
			} else {
				n.bounds = n.bounds.Union(e.rect)
			}
		}
	} else {
		for _, c := range n.children {
			if first {
				n.bounds = c.bounds
				first = false
			} else {
				n.bounds = n.bounds.Union(c.bounds)
			}
		}
	}
}

// Search returns the ids of all stored rectangles overlapping query, in
// ascending id order.
func (t *RTree) Search(query Rect) []int {
	if t.numItems == 0 {
		return nil
	}
	var out []int
	var rec func(n *rtreeNode)
	rec = func(n *rtreeNode) {
		if !n.bounds.Overlaps(query) {
			return
		}
		if n.leaf {
			for _, e := range n.entries {
				if e.rect.Overlaps(query) {
					out = append(out, e.id)
				}
			}
			return
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
	sort.Ints(out)
	return out
}

// Height returns the tree height (1 for a single leaf).
func (t *RTree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}
