package spatial

// OverlapInstance is an instance of the spatial-overlap join problem:
// pairs (r, s) join iff the rectangles overlap.
type OverlapInstance struct {
	R []Rect
	S []Rect
}

// RealizeSpider implements Lemma 3.4: a family of rectangle-overlap
// instances whose join graphs are the G_n graphs of Figure 1a (the
// Theorem 3.3 worst case), proving spatial joins are as hard as the
// general bound. Layout, with the R side holding the center and the
// leaves and the S side the middles:
//
//	center:   a tall slab at x ∈ [0,1] covering every middle strip
//	middle i: a thin horizontal strip y ∈ [2i, 2i+1] spanning x ∈ [0,10]
//	leaf i:   a small box at x ∈ [9,10] inside middle i's strip only
//
// Middles overlap the center (all i) and exactly their own leaf; leaves
// are clear of the center (x ranges [9,10] vs [0,1]) and of every other
// strip (disjoint y ranges). Overlaps within one relation are irrelevant
// to the bipartite join graph.
func RealizeSpider(n int) *OverlapInstance {
	if n < 1 {
		panic("spatial: RealizeSpider needs n >= 1")
	}
	inst := &OverlapInstance{
		R: make([]Rect, 0, n+1),
		S: make([]Rect, 0, n),
	}
	inst.R = append(inst.R, NewRect(0, 0, 1, float64(2*n))) // center, R index 0
	for i := 0; i < n; i++ {
		y0 := float64(2 * i)
		inst.S = append(inst.S, NewRect(0, y0, 10, y0+1))   // middle i
		inst.R = append(inst.R, NewRect(9, y0, 10, y0+0.5)) // leaf i, R index 1+i
	}
	return inst
}

// PolygonOverlapInstance is a spatial-overlap instance over convex
// polygons — the domain Lemma 3.4 is actually stated for (rectangles are
// the special case).
type PolygonOverlapInstance struct {
	R []Polygon
	S []Polygon
}

// RealizeSpiderPolygons realizes G_n with genuinely non-rectangular
// convex polygons: the rectangle layout of RealizeSpider with every
// corner chamfered into an octagon. All overlap depths in the rectangle
// layout are at least 0.5 and all separations at least 1, so a chamfer
// of 0.1 preserves the join graph exactly — verified in tests against
// the SAT overlap predicate.
func RealizeSpiderPolygons(n int) *PolygonOverlapInstance {
	rects := RealizeSpider(n)
	out := &PolygonOverlapInstance{
		R: make([]Polygon, len(rects.R)),
		S: make([]Polygon, len(rects.S)),
	}
	for i, r := range rects.R {
		out.R[i] = chamfer(r, 0.1)
	}
	for j, s := range rects.S {
		out.S[j] = chamfer(s, 0.1)
	}
	return out
}

// chamfer cuts each rectangle corner by d, producing a convex octagon
// (CCW). d must be at most half the shorter side.
func chamfer(r Rect, d float64) Polygon {
	if w, h := r.MaxX-r.MinX, r.MaxY-r.MinY; 2*d > w || 2*d > h {
		// Too small to chamfer safely; shrink the cut.
		m := w
		if h < m {
			m = h
		}
		d = m / 4
	}
	p, err := NewPolygon(
		Point{r.MinX + d, r.MinY},
		Point{r.MaxX - d, r.MinY},
		Point{r.MaxX, r.MinY + d},
		Point{r.MaxX, r.MaxY - d},
		Point{r.MaxX - d, r.MaxY},
		Point{r.MinX + d, r.MaxY},
		Point{r.MinX, r.MaxY - d},
		Point{r.MinX, r.MinY + d},
	)
	if err != nil {
		panic("spatial: chamfer produced invalid polygon: " + err.Error())
	}
	return p
}

// JoinPairs evaluates the SAT overlap predicate over all pairs.
func (inst *PolygonOverlapInstance) JoinPairs() [][2]int {
	var out [][2]int
	for i, r := range inst.R {
		for j, s := range inst.S {
			if r.Overlaps(s) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// JoinPairs evaluates the overlap predicate over all pairs; the reference
// the join graph and the sweep/R-tree algorithms are checked against.
func (inst *OverlapInstance) JoinPairs() [][2]int {
	var out [][2]int
	for i, r := range inst.R {
		for j, s := range inst.S {
			if r.Overlaps(s) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}
