package joinpebble

// The benchmark harness: one BenchmarkE<n> per experiment in DESIGN.md's
// per-experiment index (the paper's "tables and figures" are its lemmas
// and theorems — see EXPERIMENTS.md), plus micro-benchmarks for the load-
// bearing kernels (line graph construction, Held–Karp, the solvers, the
// join algorithms). Run with:
//
//	go test -bench=. -benchmem
import (
	"fmt"
	"math/rand"
	"testing"

	"joinpebble/internal/bench"
	"joinpebble/internal/core"
	"joinpebble/internal/family"
	"joinpebble/internal/graph"
	"joinpebble/internal/join"
	"joinpebble/internal/reduction"
	"joinpebble/internal/sets"
	"joinpebble/internal/solver"
	"joinpebble/internal/spatial"
	"joinpebble/internal/tsp"
	"joinpebble/internal/workload"
)

// benchExperiment runs a registered experiment end to end per iteration.
func benchExperiment(b *testing.B, id string) {
	e, ok := bench.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Bounds(b *testing.B)        { benchExperiment(b, "E1") }
func BenchmarkE2Additivity(b *testing.B)    { benchExperiment(b, "E2") }
func BenchmarkE3Matching(b *testing.B)      { benchExperiment(b, "E3") }
func BenchmarkE4LineGraph(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5Approx125(b *testing.B)     { benchExperiment(b, "E5") }
func BenchmarkE7HardFamily(b *testing.B)    { benchExperiment(b, "E7") }
func BenchmarkE8Universality(b *testing.B)  { benchExperiment(b, "E8") }
func BenchmarkE9SpatialFamily(b *testing.B) { benchExperiment(b, "E9") }
func BenchmarkE11Diamond(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12Incidence(b *testing.B)    { benchExperiment(b, "E12") }
func BenchmarkE13Gadget(b *testing.B)       { benchExperiment(b, "E13") }
func BenchmarkE14Ratio(b *testing.B)        { benchExperiment(b, "E14") }
func BenchmarkE15Algorithms(b *testing.B)   { benchExperiment(b, "E15") }
func BenchmarkE16Partition(b *testing.B)    { benchExperiment(b, "E16") }
func BenchmarkE17Pages(b *testing.B)        { benchExperiment(b, "E17") }
func BenchmarkE18KPebbles(b *testing.B)     { benchExperiment(b, "E18") }
func BenchmarkE19Ablation(b *testing.B)     { benchExperiment(b, "E19") }

// BenchmarkE6Equijoin benchmarks the experiment's kernel — the linear-time
// pebbler — across sizes, so the b.N scaling exposes the Theorem 4.1
// claim directly (full-table E6 includes one-off workload generation).
func BenchmarkE6Equijoin(b *testing.B) {
	for _, sz := range []int{100, 1000, 10000} {
		w := workload.Equijoin{LeftSize: sz, RightSize: sz, Domain: int64(sz / 10), Skew: 0}
		l, r := w.Generate(66)
		bg := join.EquiGraph(l.Ints(), r.Ints())
		g, _ := bg.Graph().WithoutIsolated()
		b.Run(fmt.Sprintf("m=%d", g.M()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := (solver.Equijoin{}).Solve(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10Hardness benchmarks the exact solver on the hard family at
// growing m; the per-op times grow exponentially (Theorem 4.2's shadow).
func BenchmarkE10Hardness(b *testing.B) {
	for _, n := range []int{5, 7, 9} {
		g := family.Spider(n).Graph()
		b.Run(fmt.Sprintf("exact/m=%d", g.M()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solver.OptimalCost(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, k := range []int{100, 1000} {
		g := graph.CompleteBipartite(k, 20).Graph()
		b.Run(fmt.Sprintf("equijoin/m=%d", g.M()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (solver.Equijoin{}).Solve(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- micro-benchmarks ----

func BenchmarkLineGraph(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomConnectedBipartite(rng, 50, 50, 600).Graph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		graph.LineGraph(g)
	}
}

func BenchmarkHeldKarp(b *testing.B) {
	for _, n := range []int{10, 14, 18} {
		lg := graph.LineGraph(family.Spider(n / 2).Graph())
		in := tsp.NewInstance(lg)
		b.Run(fmt.Sprintf("cities=%d", lg.N()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := tsp.Exact(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkApprox125(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range []int{50, 200, 800} {
		g := graph.RandomConnectedBipartite(rng, m/5, m/5, m).Graph()
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (solver.Approx125{}).Solve(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSimulate(b *testing.B) {
	g := graph.CompleteBipartite(40, 40).Graph()
	scheme, err := (solver.Equijoin{}).Solve(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Simulate(g, scheme); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	w := workload.Equijoin{LeftSize: 5000, RightSize: 5000, Domain: 500, Skew: 0}
	l, r := w.Generate(3)
	ls, rs := l.Ints(), r.Ints()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		join.HashJoin(ls, rs)
	}
}

func BenchmarkSortMergeZigzag(b *testing.B) {
	w := workload.Equijoin{LeftSize: 5000, RightSize: 5000, Domain: 500, Skew: 0}
	l, r := w.Generate(3)
	ls, rs := l.Ints(), r.Ints()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		join.SortMergeZigzag(ls, rs)
	}
}

func BenchmarkContainmentJoins(b *testing.B) {
	w := workload.SetContainment{LeftSize: 400, RightSize: 400, Universe: 2000,
		LeftMax: 3, RightMax: 10, Correlated: true}
	l, r := w.Generate(4)
	ls, rs := l.Sets(), r.Sets()
	b.Run("nested-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			join.NestedLoop(ls, rs, join.Contains)
		}
	})
	b.Run("signature", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			join.SignatureNestedLoop(ls, rs)
		}
	})
	b.Run("inverted-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			join.InvertedIndexJoin(ls, rs)
		}
	})
	b.Run("partitioned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			join.PartitionedSetJoin(ls, rs, 32)
		}
	})
}

func BenchmarkSpatialJoins(b *testing.B) {
	w := workload.Spatial{LeftSize: 800, RightSize: 800, Span: 300, MaxExtent: 5}
	l, r := w.Generate(5)
	ls, rs := l.Rects(), r.Rects()
	b.Run("nested-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			join.NestedLoop(ls, rs, join.Overlaps)
		}
	})
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			join.SweepJoin(ls, rs)
		}
	})
	b.Run("rtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			join.RTreeJoin(ls, rs, 16)
		}
	})
}

func BenchmarkRTree(b *testing.B) {
	w := workload.Spatial{LeftSize: 5000, RightSize: 1, Span: 500, MaxExtent: 4}
	l, _ := w.Generate(6)
	rects := l.Rects()
	b.Run("insert-5000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := spatial.NewRTree(16)
			for j, r := range rects {
				t.Insert(r, j)
			}
		}
	})
	t := spatial.NewRTree(16)
	for j, r := range rects {
		t.Insert(r, j)
	}
	query := spatial.NewRect(100, 100, 140, 140)
	b.Run("search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t.Search(query)
		}
	})
}

func BenchmarkSubsetOf(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	mk := func(n int) sets.Set {
		es := make([]uint32, n)
		for i := range es {
			es[i] = uint32(rng.Intn(10000))
		}
		return sets.New(es...)
	}
	small, big := mk(8), mk(64)
	full := small.Union(big)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		small.SubsetOf(full)
		small.SubsetOf(big)
	}
}

func BenchmarkGadgetCornerPaths(b *testing.B) {
	g := reduction.NewGadget()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := graph.HamiltonianPathBetween(g, reduction.CornerA, reduction.CornerC); !ok {
			b.Fatal("gadget lost a path")
		}
	}
}
