package joinpebble_test

import (
	"fmt"

	"joinpebble"
)

// The quickstart: equijoin graphs always pebble perfectly (Theorem 3.2).
func ExamplePebble() {
	b := joinpebble.EquijoinGraph([]int64{1, 2, 2}, []int64{2, 2, 3})
	scheme, cost, err := joinpebble.Pebble(b)
	if err != nil {
		panic(err)
	}
	fmt.Println("m:", b.M())
	fmt.Println("π̂:", cost)
	fmt.Println("perfect:", joinpebble.IsPerfect(b, scheme))
	// Output:
	// m: 4
	// π̂: 5
	// perfect: true
}

// The hard family of Theorem 3.3: π(G_n) = 1.25m − 1 at even n.
func ExampleHardFamily() {
	b := joinpebble.HardFamily(4)
	opt, err := joinpebble.OptimalCost(b)
	if err != nil {
		panic(err)
	}
	fmt.Println("m:", b.M())
	fmt.Println("π:", opt-1)
	fmt.Println("1.25m-1:", 5*b.M()/4-1)
	// Output:
	// m: 8
	// π: 9
	// 1.25m-1: 9
}

// Lemma 3.3: any bipartite join graph is a set-containment join graph.
func ExampleAsContainmentJoin() {
	b := joinpebble.NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	b.AddEdge(1, 1)
	r, s := joinpebble.AsContainmentJoin(b)
	back := joinpebble.ContainmentGraph(r, s)
	fmt.Println("round trip exact:", back.Equal(b))
	fmt.Println("s_0 =", s[0])
	// Output:
	// round trip exact: true
	// s_0 = {0,1}
}

// PEBBLE(D) of Definition 4.1 as a decision call.
func ExampleDecide() {
	g3 := joinpebble.HardFamily(3) // π(G_3) = 7
	for _, k := range []int{6, 7} {
		ok, err := joinpebble.Decide(g3, k)
		if err != nil {
			panic(err)
		}
		fmt.Printf("π <= %d: %v\n", k, ok)
	}
	// Output:
	// π <= 6: false
	// π <= 7: true
}

// Scoring a real algorithm's emission order in the model (§2).
func ExampleAuditEmission() {
	b := joinpebble.EquijoinGraph([]int64{7, 7}, []int64{7, 7})
	// Boustrophedon emission — Lemma 3.2's perfect order.
	pairs := []joinpebble.Pair{{L: 0, R: 0}, {L: 0, R: 1}, {L: 1, R: 1}, {L: 1, R: 0}}
	audit, err := joinpebble.AuditEmission(b, pairs)
	if err != nil {
		panic(err)
	}
	fmt.Println("jumps:", audit.Jumps)
	fmt.Println("perfect:", audit.Perfect)
	// Output:
	// jumps: 0
	// perfect: true
}
