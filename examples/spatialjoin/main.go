// Spatial-overlap joins (§3.3): a map-overlay scenario — parcels joined
// with flood zones by rectangle overlap — computed three ways (nested
// loop, plane sweep, R-tree probe) and audited in the pebble model, plus
// the Lemma 3.4 construction realizing the worst-case G_n join graphs
// with rectangles.
package main

import (
	"fmt"
	"log"

	"joinpebble"
	"joinpebble/internal/join"
	"joinpebble/internal/spatial"
	"joinpebble/internal/workload"
)

func main() {
	// Clustered rectangles: parcels and hazard zones concentrate around
	// the same towns, the skew real spatial data shows.
	w := workload.Spatial{
		LeftSize: 120, RightSize: 90, Span: 200, MaxExtent: 8, Clusters: 4,
	}
	parcels, zones := w.Generate(7)
	ls, rs := parcels.Rects(), zones.Rects()

	b := joinpebble.OverlapGraph(ls, rs)
	fmt.Printf("overlay join: %d parcels x %d zones, %d overlaps\n\n", len(ls), len(rs), b.M())

	algos := []struct {
		name string
		run  func() []join.Pair
	}{
		{"nested loop", func() []join.Pair { return join.NestedLoop(ls, rs, join.Overlaps) }},
		{"plane sweep", func() []join.Pair { return join.SweepJoin(ls, rs) }},
		{"R-tree probe", func() []join.Pair { return join.RTreeJoin(ls, rs, 8) }},
	}
	fmt.Printf("%-14s %8s %8s %8s\n", "algorithm", "pairs", "jumps", "perfect")
	for _, a := range algos {
		pairs := a.run()
		audit, err := joinpebble.AuditEmission(b, pairs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %8d %8d %8v\n", a.name, audit.Pairs, audit.Jumps, audit.Perfect)
	}

	// An R-tree at work: the same probe as an index lookup.
	tree := spatial.NewRTree(8)
	for j, z := range rs {
		tree.Insert(z, j)
	}
	query := ls[0]
	fmt.Printf("\nR-tree (height %d) zones overlapping parcel 0 %v: %v\n",
		tree.Height(), query, tree.Search(query))

	// Lemma 3.4: rectangles realize the Theorem 3.3 worst-case family —
	// spatial joins are combinatorially as hard as joins get.
	n := 6
	r, s := joinpebble.AsSpatialJoin(n)
	hard := joinpebble.OverlapGraph(r, s)
	fmt.Printf("\nLemma 3.4: rectangle instance with join graph G_%d (m = %d)\n", n, hard.M())
	opt, err := joinpebble.OptimalCost(hard)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("π = %d vs the perfect-pebbling m = %d an equijoin of the same size would get\n",
		opt-1, hard.M())
	fmt.Printf("paper's bound 1.25m-1 = %.1f (Theorem 3.3)\n", 1.25*float64(hard.M())-1)
}
