// Page-fetch scheduling and partitioned joins: the two neighbours of the
// paper's model. First the [6] lineage (§2 related work): the pebble game
// played on disk pages prices join I/O, and a value-clustered layout
// shrinks the page graph an order of magnitude. Then the §5 open
// problem: partitioning R and S so few R_i x S_j sub-joins are active —
// hash partitioning makes equijoins hit the lower bound, supporting the
// paper's closing conjecture.
package main

import (
	"fmt"
	"log"

	"joinpebble/internal/join"
	"joinpebble/internal/pages"
	"joinpebble/internal/partition"
	"joinpebble/internal/solver"
	"joinpebble/internal/workload"
)

func main() {
	w := workload.Equijoin{LeftSize: 400, RightSize: 400, Domain: 40, Skew: 0.5}
	l, r := w.Generate(12)
	ls, rs := l.Ints(), r.Ints()
	b := join.EquiGraph(ls, rs)
	fmt.Printf("equijoin: %d x %d tuples, m = %d joining pairs\n\n", len(ls), len(rs), b.M())

	fmt.Println("== [6]: scheduling page fetches (capacity 10 tuples/page) ==")
	for _, layout := range []struct {
		name string
		l    *pages.Layout
	}{
		{"sequential (heap file)", pages.Sequential(len(ls), len(rs), 10)},
		{"value-clustered (index)", pages.ValueClustered(ls, rs, 10)},
	} {
		sched, err := pages.Plan(b, layout.l, solver.Approx125{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-25s page pairs %5d   fetches %5d   (floor %d)\n",
			layout.name, sched.PagePairs, sched.Fetches, sched.LowerBound)
	}

	fmt.Println("\n== §5: the partitioned-join mapping problem (K = L = 32) ==")
	assignments := []struct {
		name string
		a    *partition.Assignment
	}{
		{"hash on join value", partition.HashEquijoin(ls, rs, 32)},
		{"greedy on join graph", partition.GreedyGraph(b, 32, 32)},
	}
	for _, as := range assignments {
		st, err := partition.Evaluate(b, as.a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-25s active sub-joins %4d   work %6d   lower bound %6d   ratio %.3f\n",
			as.name, st.ActivePairs, st.Work, st.ReadLowerBound,
			float64(st.Work)/float64(st.ReadLowerBound))
	}
	fmt.Println("\nhash partitioning reads every tuple once — the conjectured easiness of the")
	fmt.Println("equijoin mapping problem; spatial and containment variants pay replication")
	fmt.Println("(run cmd/experiments -run E16 for the full comparison).")
}
