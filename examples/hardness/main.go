// Hardness tour (§4): watch the exact solver's exponential wall against
// the equijoin pebbler's linear time (Theorems 4.1 vs 4.2), then drive
// both Section 4 L-reductions end to end — TSP-4(1,2) through the diamond
// gadget into TSP-3(1,2), and TSP-3(1,2) through the incidence graph into
// PEBBLE — checking the Definition 4.2 inequalities with exact optima.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"joinpebble/internal/family"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
	"joinpebble/internal/reduction"
	"joinpebble/internal/solver"
	"joinpebble/internal/tsp"
)

func main() {
	exponentialVsLinear()
	diamondReduction()
	incidenceReduction()
}

func exponentialVsLinear() {
	fmt.Println("== Theorem 4.2 vs 4.1: exact solving explodes, equijoins stay linear ==")
	for _, n := range []int{5, 7, 9} {
		g := family.Spider(n).Graph()
		start := obs.Now()
		cost, err := solver.OptimalCost(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  spider-%d (m=%2d): exact π̂=%d in %v\n", n, g.M(), cost, obs.Since(start).Round(time.Microsecond))
	}
	for _, k := range []int{100, 1000} {
		g := graph.CompleteBipartite(k, 50).Graph()
		start := obs.Now()
		_, cost, err := solver.SolveAndVerify(solver.Equijoin{}, g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  K(%d,50) (m=%d): equijoin π̂=%d in %v\n", k, g.M(), cost, obs.Since(start).Round(time.Microsecond))
	}
}

func diamondReduction() {
	fmt.Println("\n== Theorem 4.3: TSP-4(1,2) -> TSP-3(1,2) via the diamond gadget ==")
	rng := rand.New(rand.NewSource(99))
	g := graph.RandomConnectedGraph(rng, 5, 7, 4)
	r, err := reduction.NewDegree4To3(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  G: %d vertices, %d edges (max degree %d)\n", g.N(), g.M(), g.MaxDegree())
	fmt.Printf("  H = f(G): %d vertices (max degree %d)\n", r.H.N(), r.H.MaxDegree())

	var tours []tsp.Tour
	for k := 0; k < 8; k++ {
		tours = append(tours, tsp.Tour(rng.Perm(r.H.N())))
	}
	check, err := reduction.CheckDegree4To3(r, tours)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  OPT(G)=%d  OPT(H)=%d  alpha=%.2f (bound: gadget size %d)\n",
		check.OptA, check.OptB, check.Alpha, reduction.GadgetSize)
	fmt.Printf("  beta=1 violations over %d sampled tours: %d\n", check.Samples, check.MaxBetaViolation)
}

func incidenceReduction() {
	fmt.Println("\n== Theorem 4.4: TSP-3(1,2) -> PEBBLE via the incidence graph ==")
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomConnectedGraph(rng, 6, 8, 3)
	r, err := reduction.NewTSPToPebble(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  G: %d vertices, %d edges; B = incidence graph %dx%d with %d edges\n",
		g.N(), g.M(), r.B.NLeft(), r.B.NRight(), r.B.M())

	_, optTour := tsp.Solve(tsp.NewInstance(g))
	optPebble, err := solver.OptimalCost(r.B.Graph())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  OPT tour of G = %d;  π̂(B) = %d;  predicted 2m+J*+1 = %d\n",
		optTour, optPebble, r.PebbleCostFromTourCost(optTour))
	if optPebble == r.PebbleCostFromTourCost(optTour) {
		fmt.Println("  -> solving PEBBLE on B recovers the TSP answer exactly (the NP-hardness transfer)")
	}
}
