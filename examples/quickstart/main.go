// Quickstart: build the join graph of a small equijoin, pebble it, and
// see Theorem 3.2 in action — equijoin graphs always admit a perfect
// pebbling (π = m), found in linear time, and the zigzag sort-merge
// emission order IS that perfect pebbling.
package main

import (
	"fmt"
	"log"

	"joinpebble"
	"joinpebble/internal/join"
)

func main() {
	// Two single-column relations; the join predicate is equality (§3.1).
	r := []int64{10, 20, 20, 30}
	s := []int64{20, 20, 30, 40}

	// The join graph: one vertex per tuple, one edge per joining pair.
	b := joinpebble.EquijoinGraph(r, s)
	fmt.Printf("join graph: %d x %d tuples, m = %d result pairs\n",
		b.NLeft(), b.NRight(), b.M())

	// Pebble it. The automatic solver recognizes the equijoin structure
	// (every component is complete bipartite) and uses the linear-time
	// boustrophedon pebbler of Lemma 3.2.
	scheme, cost, err := joinpebble.Pebble(b)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := joinpebble.Bounds(b)
	fmt.Printf("pebbling cost π̂ = %d (universal bounds %d..%d)\n", cost, lo, hi)
	fmt.Printf("effective cost π = %d, m = %d -> perfect: %v\n",
		joinpebble.EffectiveCost(b, scheme), b.M(), joinpebble.IsPerfect(b, scheme))

	fmt.Println("\nconfiguration sequence (left tuple, right tuple offsets):")
	for i, c := range scheme {
		fmt.Printf("  move %d: pebbles on %v\n", i+1, c)
	}

	// The same thing through a real algorithm: the zigzag sort-merge's
	// own emission order scores π = m in the model (§4's remark that the
	// Theorem 4.1 construction mirrors the merge phase of sort-merge).
	pairs := join.SortMergeZigzag(r, s)
	audit, err := joinpebble.AuditEmission(b, pairs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nzigzag sort-merge emission: %d pairs, %d jumps, perfect: %v\n",
		audit.Pairs, audit.Jumps, audit.Perfect)

	// The textbook rewind merge is NOT perfect: it jumps once per left
	// tuple switch inside each value group.
	rewind := join.SortMerge(r, s)
	audit2, err := joinpebble.AuditEmission(b, rewind)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rewind sort-merge emission: %d pairs, %d jumps, perfect: %v\n",
		audit2.Pairs, audit2.Jumps, audit2.Perfect)
}
