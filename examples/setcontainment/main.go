// Set-containment joins (§3.2): a product-catalog scenario — "find every
// (query, product) pair where the product carries all the query's tags" —
// run through four real algorithms, audited in the pebble model, plus the
// Lemma 3.3 universality construction showing containment joins can
// produce ANY join graph, including the Theorem 3.3 worst case.
package main

import (
	"fmt"
	"log"

	"joinpebble"
	"joinpebble/internal/join"
	"joinpebble/internal/solver"
	"joinpebble/internal/workload"
)

func main() {
	// A correlated workload: probe sets are subsets of stored tag sets,
	// like user queries drawn from real product tags.
	w := workload.SetContainment{
		LeftSize: 60, RightSize: 80, Universe: 500,
		LeftMax: 3, RightMax: 10, Correlated: true,
	}
	queries, products := w.Generate(2024)
	ls, rs := queries.Sets(), products.Sets()

	b := joinpebble.ContainmentGraph(ls, rs)
	fmt.Printf("catalog join: %d queries x %d products, %d matches\n\n",
		len(ls), len(rs), b.M())

	// Every algorithm computes the same pairs; their emission orders
	// score differently in the pebble game.
	algos := []struct {
		name string
		run  func() []join.Pair
	}{
		{"nested loop", func() []join.Pair { return join.NestedLoop(ls, rs, join.Contains) }},
		{"signature NL (Helmer-Moerkotte)", func() []join.Pair { return join.SignatureNestedLoop(ls, rs) }},
		{"inverted index", func() []join.Pair { return join.InvertedIndexJoin(ls, rs) }},
		{"partitioned (PSJ-style)", func() []join.Pair { return join.PartitionedSetJoin(ls, rs, 16) }},
	}
	fmt.Printf("%-34s %8s %8s %8s\n", "algorithm", "pairs", "jumps", "perfect")
	for _, a := range algos {
		pairs := a.run()
		audit, err := joinpebble.AuditEmission(b, pairs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %8d %8d %8v\n", a.name, audit.Pairs, audit.Jumps, audit.Perfect)
	}

	// How close can ANY order get? Solve the pebbling problem itself.
	g, _ := b.Graph().WithoutIsolated()
	_, cost, err := solver.SolveAndVerify(solver.Approx125{}, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest order found by the Theorem 3.1 approximation: π̂ = %d (m = %d, bound %d)\n",
		cost, g.M(), solver.ApproxCostBound(g))

	// Universality (Lemma 3.3): containment joins can realize ANY
	// bipartite join graph — here, the Theorem 3.3 worst-case family,
	// which no equijoin can produce.
	hard := joinpebble.HardFamily(5)
	qs, ps := joinpebble.AsContainmentJoin(hard)
	back := joinpebble.ContainmentGraph(qs, ps)
	fmt.Printf("\nLemma 3.3: realized G_5 as a containment join; round trip exact: %v\n",
		back.Equal(hard))
	opt, err := joinpebble.OptimalCost(hard)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("π(G_5) = %d with m = %d — the 1.25m-1 worst case of Theorem 3.3\n",
		opt-1, hard.M())
}
