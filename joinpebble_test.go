package joinpebble

import (
	"testing"

	"joinpebble/internal/solver"
)

func TestQuickstartFlow(t *testing.T) {
	b := EquijoinGraph([]int64{1, 2, 2}, []int64{2, 2, 3})
	if b.M() != 4 {
		t.Fatalf("m=%d want 4", b.M())
	}
	scheme, cost, err := Pebble(b)
	if err != nil {
		t.Fatal(err)
	}
	if !IsPerfect(b, scheme) {
		t.Fatal("equijoin graph must pebble perfectly")
	}
	lo, hi := Bounds(b)
	if cost < lo || cost > hi {
		t.Fatalf("cost %d outside [%d,%d]", cost, lo, hi)
	}
	if EffectiveCost(b, scheme) != b.M() {
		t.Fatal("perfect scheme has π = m")
	}
}

func TestContainmentGraphFacade(t *testing.T) {
	ls := []Set{NewSet(1), NewSet(2)}
	rs := []Set{NewSet(1, 2), NewSet(2, 3)}
	b := ContainmentGraph(ls, rs)
	if b.M() != 3 { // {1}⊆{1,2}; {2}⊆{1,2}; {2}⊆{2,3}
		t.Fatalf("m=%d want 3", b.M())
	}
}

func TestOverlapGraphFacade(t *testing.T) {
	ls := []Rect{NewRect(0, 0, 2, 2)}
	rs := []Rect{NewRect(1, 1, 3, 3), NewRect(5, 5, 6, 6)}
	b := OverlapGraph(ls, rs)
	if b.M() != 1 || !b.HasEdge(0, 0) {
		t.Fatalf("overlap graph %v", b)
	}
}

func TestHardFamilyFacade(t *testing.T) {
	b := HardFamily(4)
	opt, err := OptimalCost(b)
	if err != nil {
		t.Fatal(err)
	}
	if opt-1 != HardFamilyOptimal(4) {
		t.Fatalf("π=%d want %d", opt-1, HardFamilyOptimal(4))
	}
	// The hard family must NOT pebble perfectly for n >= 3.
	scheme, _, err := Pebble(b)
	if err != nil {
		t.Fatal(err)
	}
	if IsPerfect(b, scheme) {
		t.Fatal("G_4 cannot pebble perfectly")
	}
}

func TestUniversalityFacade(t *testing.T) {
	b := HardFamily(3)
	r, s := AsContainmentJoin(b)
	back := ContainmentGraph(r, s)
	if !back.Equal(b) {
		t.Fatal("containment realization round trip failed")
	}
	rr, ss := AsSpatialJoin(3)
	sp := OverlapGraph(rr, ss)
	if sp.M() != 6 {
		t.Fatalf("spatial realization m=%d want 6", sp.M())
	}
}

func TestAuditEmissionFacade(t *testing.T) {
	b := EquijoinGraph([]int64{5, 5}, []int64{5, 5})
	pairs := []Pair{{L: 0, R: 0}, {L: 0, R: 1}, {L: 1, R: 1}, {L: 1, R: 0}}
	a, err := AuditEmission(b, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Perfect || a.Jumps != 0 {
		t.Fatalf("boustrophedon emission should be perfect: %+v", a)
	}
}

func TestSolversLineup(t *testing.T) {
	names := map[string]bool{}
	for _, s := range Solvers() {
		names[s.Name()] = true
	}
	for _, want := range []string{"naive", "greedy", "approx-1.25", "exact", "equijoin", "auto"} {
		if !names[want] {
			t.Fatalf("missing solver %q in %v", want, names)
		}
	}
}

func TestDecideFacade(t *testing.T) {
	b := HardFamily(3) // π = 7, m = 6
	for _, c := range []struct {
		k    int
		want bool
	}{{5, false}, {6, false}, {7, true}, {12, true}} {
		got, err := Decide(b, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("Decide(G_3, %d)=%v want %v", c.k, got, c.want)
		}
	}
}

func TestApproxWithinFacade(t *testing.T) {
	b := HardFamily(4) // π = 9, m = 8
	for _, eps := range []float64{1, 0.25, 0} {
		scheme, err := ApproxWithin(b, eps)
		if err != nil {
			t.Fatal(err)
		}
		eff := EffectiveCost(b, scheme)
		if float64(eff) > (1+eps)*float64(HardFamilyOptimal(4)) {
			t.Fatalf("eps=%v gave π=%d, optimal %d", eps, eff, HardFamilyOptimal(4))
		}
	}
}

func TestPageAndPartitionFacades(t *testing.T) {
	b := EquijoinGraph([]int64{1, 1, 2, 2}, []int64{1, 2, 2, 3})
	sched, err := PlanPageFetches(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Fetches < sched.LowerBound {
		t.Fatal("fetch schedule below floor")
	}
	st, err := PartitionWork(b, nil)
	if err == nil {
		t.Fatal("nil assignment must error")
	}
	_ = st
}

func TestPebbleWithFacade(t *testing.T) {
	b := HardFamily(3)
	_, cost, err := PebbleWith(solver.Approx125{}, b)
	if err != nil {
		t.Fatal(err)
	}
	if cost > solver.ApproxCostBound(b.Graph()) {
		t.Fatal("approx bound violated through facade")
	}
}
